"""Discrete-event simulator of the two-cluster platform.

Simulates, cycle-accurately at the message/process granularity, the
runtime described in sections 2.2–2.3:

* **TTC nodes** dispatch processes at their schedule-table times each
  period and the TTP controllers broadcast the MEDL frames in their TDMA
  slots;
* **ETC nodes** run preemptive fixed-priority schedulers; completed
  processes enqueue messages in their node's ``Out_Ni`` queue;
* the **CAN bus** transmits, whenever idle, the globally highest-priority
  pending message (non-preemptive once started);
* the **gateway** transfer process ``T`` moves TTC frames from the MBI
  into the priority-ordered ``Out_CAN`` queue (after ``C_T``) and CAN
  deliveries into the FIFO ``Out_TTP`` queue; the gateway's TDMA slot
  drains ``Out_TTP`` front-first up to the slot capacity per round.

The simulator is the reproduction's substitute for the paper's hardware
platform (see DESIGN.md): analysis bounds are validated by dominance over
simulated traces.  It is deterministic; execution times default to the
WCETs (the regime in which the offset-based analysis promises dominance)
and can be scaled per activation for robustness experiments.

Restrictions (asserted): all graphs share one period, and that period is
an integer multiple of the TDMA round length, so the static schedule and
the TDMA grid tile the timeline consistently.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..exceptions import SimulationError
from ..model.architecture import MessageRoute
from ..model.configuration import SystemConfiguration
from ..schedule.schedule_table import StaticSchedule
from ..semantics import dispatch_respects_arrival, gateway_transfer_delay
from ..system import System
from .events import EventQueue, ORDER_BUS, ORDER_DELIVER, ORDER_DISPATCH
from .kernel import SimContext
from .trace import ScheduleViolation, SimulationTrace

__all__ = ["LegacySimulator", "Simulator", "legacy_simulate", "simulate"]

ExecutionModel = Callable[[str, int], float]


class Simulator:
    """Deterministic discrete-event simulation of the platform.

    Since the compiled kernel landed this class is a thin wrapper over
    :class:`repro.sim.kernel.SimContext`: construction compiles (or
    adopts) a context, :meth:`run` replays it.  The pre-kernel
    event-by-event engine survives as :class:`LegacySimulator` /
    :func:`legacy_simulate` and the two are trace-parity-tested against
    each other (``tests/test_sim_parity.py``).

    Parameters
    ----------
    system, config:
        The problem instance and a *complete* configuration (offsets are
        taken from ``schedule``).
    schedule:
        The static schedule produced by the multi-cluster loop for
        ``config`` (tables + MEDL).
    periods:
        How many period instances to simulate.
    execution:
        Optional execution-time model ``(process, instance) -> time``;
        defaults to the WCET.  Values must not exceed the WCET.
    context:
        Optional pre-compiled :class:`SimContext` for this
        ``(system, config, schedule)`` triple (a Session passes its
        cached one); compiled here when absent.
    faults:
        Optional :class:`repro.faults.FaultSpec` injected through the
        kernel's dynamic path (see :meth:`SimContext.run`).
    """

    def __init__(
        self,
        system: System,
        config: SystemConfiguration,
        schedule: StaticSchedule,
        periods: int = 4,
        execution: Optional[ExecutionModel] = None,
        context: Optional[SimContext] = None,
        faults=None,
    ) -> None:
        self.system = system
        self.config = config
        self.schedule = schedule
        self.periods = periods
        self.context = (
            context
            if context is not None
            else SimContext(system, config, schedule)
        )
        self._execution = execution
        self._faults = faults

    def run(self) -> SimulationTrace:
        """Execute the simulation and return the trace."""
        return self.context.run(
            periods=self.periods, execution=self._execution,
            faults=self._faults,
        )


class _Job:
    """One activation of an ET process on a node CPU."""

    __slots__ = (
        "name", "instance", "remaining", "priority", "release",
        "last_resume", "version",
    )

    def __init__(
        self, name: str, instance: int, remaining: float, priority: int,
        release: float,
    ) -> None:
        self.name = name
        self.instance = instance
        self.remaining = remaining
        self.priority = priority
        self.release = release
        self.last_resume = 0.0
        self.version = 0


class _EtCpu:
    """Preemptive fixed-priority scheduler of one ET node."""

    def __init__(self, sim: "LegacySimulator", node: str) -> None:
        self.sim = sim
        self.node = node
        self.running: Optional[_Job] = None
        self.ready: List[Tuple[int, int, _Job]] = []
        self._seq = 0

    def activate(self, job: _Job) -> None:
        queue = self.sim.events
        if self.running is None:
            # Go through the ready queue even on an idle CPU: a job
            # activated from a completion callback (same-node successor)
            # must not jump ahead of higher-priority jobs already
            # waiting — the scheduler always runs the highest-priority
            # ready job, never the most recently released one.
            self._push(job)
            self._dispatch_next()
            return
        if job.priority < self.running.priority:
            # Preempt: bank the progress of the running job.  The running
            # job's priority is <= every ready job's, so the preemptor is
            # the new highest-priority job and may start directly.
            current = self.running
            current.remaining -= queue.now - current.last_resume
            current.version += 1
            self._push(current)
            self._start(job)
        else:
            self._push(job)

    def _push(self, job: _Job) -> None:
        self._seq += 1
        heapq.heappush(self.ready, (job.priority, self._seq, job))

    def _start(self, job: _Job) -> None:
        queue = self.sim.events
        self.running = job
        job.last_resume = queue.now
        version = job.version
        queue.schedule(
            queue.now + job.remaining, lambda: self._complete(job, version)
        )

    def _complete(self, job: _Job, version: int) -> None:
        if self.running is not job or job.version != version:
            return  # stale completion (the job was preempted)
        self.running = None
        self.sim.on_et_completion(job)
        self._dispatch_next()

    def _dispatch_next(self) -> None:
        if self.running is None and self.ready:
            _prio, _seq, job = heapq.heappop(self.ready)
            self._start(job)


class _CanBus:
    """One CAN bus: global priority arbitration, non-preemptive frames.

    General topologies instantiate one per ET cluster; the canonical
    system's single instance behaves exactly as before.
    """

    def __init__(self, sim: "LegacySimulator") -> None:
        self.sim = sim
        self.pending: List[Tuple[int, int, str, int, str, int]] = []
        self.busy = False
        self._seq = 0

    def enqueue(
        self, msg_name: str, instance: int, queue_name: str, leg_pos: int = 0
    ) -> None:
        self._seq += 1
        priority = self.sim.config.priorities.message_priority(msg_name)
        heapq.heappush(
            self.pending,
            (priority, self._seq, msg_name, instance, queue_name, leg_pos),
        )
        self.sim.adjust_queue(queue_name, +self.sim.msg_size[msg_name])
        # Defer arbitration to the bus phase of this timestamp so that all
        # messages enqueued at the same instant contend together — CAN
        # arbitration is simultaneous, and the gateway transfer process
        # moves a whole frame into the priority-ordered queue atomically.
        events = self.sim.events
        events.schedule(events.now, self.try_start, order=ORDER_BUS)

    def try_start(self) -> None:
        if self.busy or not self.pending:
            return
        _prio, _seq, msg_name, instance, queue_name, leg_pos = heapq.heappop(
            self.pending
        )
        self.busy = True
        events = self.sim.events
        runtime = self.sim.fault_runtime
        if msg_name is None:
            # Phantom babbling-idiot frame: occupies the bus (derated,
            # error-prone wire time like any other frame) but was never
            # in a software queue and will deliver nothing.
            duration = runtime.can_span(
                events.now, runtime.babble_frame_time
            )
        else:
            # The frame moves from the software queue into the CAN
            # controller as transmission starts — mirroring the
            # queue-size semantics of the analysis (a message occupies
            # Out_* only while *awaiting* transmission).
            self.sim.adjust_queue(queue_name, -self.sim.msg_size[msg_name])
            duration = self.sim.system.can_frame_time(msg_name)
            if runtime is not None:
                duration = runtime.can_span(
                    events.now, duration * runtime.bus_factor
                )
        events.schedule(
            events.now + duration,
            lambda: self._complete(msg_name, instance, leg_pos),
        )

    def _complete(
        self, msg_name: Optional[str], instance: int, leg_pos: int
    ) -> None:
        self.busy = False
        if msg_name is not None:
            self.sim.on_can_delivery(msg_name, instance, leg_pos)
        self.try_start()


class LegacySimulator:
    """The pre-kernel event-by-event engine (see module docstring).

    Kept as the executable specification the compiled kernel is
    parity-tested against: it builds per-instance closures and runs
    every event — static and dynamic alike — through the
    :class:`EventQueue` heap.  Use :class:`Simulator` (the compiled
    kernel) everywhere else.

    Parameters
    ----------
    system, config:
        The problem instance and a *complete* configuration (offsets are
        taken from ``schedule``).
    schedule:
        The static schedule produced by the multi-cluster loop for
        ``config`` (tables + MEDL).
    periods:
        How many period instances to simulate.
    execution:
        Optional execution-time model ``(process, instance) -> time``;
        defaults to the WCET.  Values must not exceed the WCET.
    faults:
        Optional :class:`repro.faults.FaultSpec`.  The same seeded
        fault processes as the compiled kernel's — CAN
        error/retransmission, slow nodes, slow bus, execution jitter
        and babbling-idiot frames — so fault traces stay
        parity-testable across engines.
    """

    def __init__(
        self,
        system: System,
        config: SystemConfiguration,
        schedule: StaticSchedule,
        periods: int = 4,
        execution: Optional[ExecutionModel] = None,
        faults=None,
    ) -> None:
        self.system = system
        self.config = config
        self.schedule = schedule
        self.periods = periods
        periods_set = {g.period for g in system.app.graphs.values()}
        if len(periods_set) != 1:
            raise SimulationError(
                "the simulator requires a common graph period; combine "
                "graphs with repro.model.hypergraph.combine first"
            )
        self.hyper = periods_set.pop()
        round_length = config.bus.round_length
        ratio = self.hyper / round_length
        if abs(ratio - round(ratio)) > 1e-6:
            raise SimulationError(
                f"graph period {self.hyper} is not a multiple of the TDMA "
                f"round {round_length}; the cyclic schedule would drift"
            )
        self.rounds_per_period = int(round(ratio))
        self.events = EventQueue()
        self.trace = SimulationTrace()
        self.msg_size: Dict[str, int] = {
            m.name: m.size for m in system.app.all_messages()
        }
        self.fault_runtime = None
        if faults is not None:
            from ..faults import FaultRuntime, faulty_execution

            self.fault_runtime = FaultRuntime(faults, system)
            execution = faulty_execution(faults, system, execution)
        self._execution = execution
        self._queue_occupancy: Dict[str, float] = {}
        self._cpus: Dict[str, _EtCpu] = {
            node: _EtCpu(self, node)
            for node in system.arch.et_node_names()
        }
        # Route-aware topology state: one CAN bus per ET cluster, one
        # Out_TTP FIFO + transfer delay per gateway.  The canonical
        # two-cluster system reduces to exactly one of each, and every
        # event is scheduled in the same order as the pre-routing engine
        # (trace byte-identity is regression-tested).
        topo = system.topology
        self._plan = system.routing_for(
            getattr(config, "routes", None) or None
        )
        self._cans: Dict[str, _CanBus] = {
            cluster: _CanBus(self) for cluster in topo.et_clusters()
        }
        self._gateway_set = set(system.arch.gateways())
        self._out_ttp: Dict[str, List[Tuple[str, int]]] = {
            g: [] for g in system.arch.gateways()
        }
        # AND-join bookkeeping: per (process, instance), how many inputs
        # are still missing; when each message instance became available
        # (for the shared dispatch-eligibility check on the TT side).
        self._missing: Dict[Tuple[str, int], int] = {}
        self._msg_arrival: Dict[Tuple[str, int], float] = {}
        # Per message instance, the causal journey through the platform
        # (producer completion, CAN delivery, FIFO entry, gateway slot):
        # the context a ScheduleViolation is annotated with.
        self._journey: Dict[Tuple[str, int], Dict[str, float]] = {}
        self._transfer = {
            g: gateway_transfer_delay(system, g)
            for g in system.arch.gateways()
        }
        self._completed: Set[Tuple[str, int]] = set()
        self._sink_left: Dict[Tuple[str, int], int] = {}
        self._sink_latest: Dict[Tuple[str, int], float] = {}

    # -- helpers -------------------------------------------------------------

    def exec_time(self, proc_name: str, instance: int) -> float:
        """Execution time of one activation (defaults to the WCET)."""
        wcet = self.system.app.process(proc_name).wcet
        if self._execution is None:
            return wcet
        value = self._execution(proc_name, instance)
        if value > wcet + 1e-9:
            raise SimulationError(
                f"execution model exceeded WCET for {proc_name}: "
                f"{value} > {wcet}"
            )
        return max(0.0, value)

    def adjust_queue(self, queue_name: str, delta: float) -> None:
        """Update a queue's byte occupancy and record the peak."""
        level = self._queue_occupancy.get(queue_name, 0.0) + delta
        self._queue_occupancy[queue_name] = level
        self.trace.note_queue(queue_name, level)

    def _note_journey(self, msg_name: str, instance: int, stage: str) -> None:
        """Record one stage of a message instance's causal journey."""
        log = self._journey.setdefault((msg_name, instance), {})
        log.setdefault(stage, self.events.now)

    # -- setup ---------------------------------------------------------------

    def _seed_events(self) -> None:
        app = self.system.app
        arch = self.system.arch
        horizon_rounds = self.rounds_per_period * self.periods
        # TT schedule tables, every period instance.
        for k in range(self.periods):
            base = k * self.hyper
            for node, entries in self.schedule.tables.items():
                for entry in entries:
                    self.events.schedule(
                        base + entry.start,
                        self._make_tt_dispatch(entry.process, k, base + entry.start),
                        order=ORDER_DISPATCH,
                    )
            # ET source processes released at the period start.
            for graph in app.graphs.values():
                for proc_name in graph.processes:
                    if arch.is_tt_node(app.process(proc_name).node):
                        continue
                    preds = graph.predecessors(proc_name)
                    self._missing[(proc_name, k)] = len(preds)
                    if not preds:
                        release = base + self.system.release_of(proc_name)
                        self.events.schedule(
                            release,
                            self._make_et_release(proc_name, k, release),
                            order=ORDER_DISPATCH,
                        )
            # Sink bookkeeping for graph response times.
            for graph in app.graphs.values():
                self._sink_left[(graph.name, k)] = len(graph.sinks())
                self._sink_latest[(graph.name, k)] = 0.0
        # TDMA slots for the whole horizon.
        bus = self.config.bus
        for absolute_round in range(horizon_rounds):
            for slot in bus.slots:
                start = bus.slot_start(slot.node, absolute_round)
                if slot.node in self._gateway_set:
                    self.events.schedule(
                        start,
                        self._make_gateway_slot(slot.node, absolute_round),
                        order=ORDER_BUS,
                    )
                else:
                    self.events.schedule(
                        start,
                        self._make_ttp_slot(slot.node, absolute_round),
                        order=ORDER_BUS,
                    )
        # Babbling-idiot frames: seeded last so that on an exact tie a
        # TDMA slot (seeded above, lower sequence number) fires first —
        # matching the kernel, where static-timeline events win ties
        # against heap events — while dynamically scheduled arbitration
        # (higher sequence numbers) still loses to babble.
        runtime = self.fault_runtime
        if runtime is not None and runtime.spec.babble_period is not None:
            priority = runtime.spec.babble_priority
            horizon = (self.periods + 1) * self.hyper
            for t in runtime.babble_times(horizon):
                self.events.schedule(
                    t, self._make_babble(priority), order=ORDER_BUS
                )

    def _babble_bus(self) -> _CanBus:
        """The CAN bus a babbling idiot jams (a named bus on general
        topologies, the single bus otherwise)."""
        target = getattr(self.fault_runtime.spec, "babble_bus", None)
        if target is None:
            target = self.system.topology.et_clusters()[0]
        try:
            return self._cans[target]
        except KeyError:
            raise SimulationError(
                f"babble_bus {target!r} names no ET cluster "
                f"(known: {sorted(self._cans)})"
            ) from None

    def _make_babble(self, priority: int):
        def babble() -> None:
            self.fault_runtime.babble_frames += 1
            can = self._babble_bus()
            can._seq += 1
            # Phantom pending entry: ``msg_name``/``queue_name`` are
            # None, so transmission start skips the queue bookkeeping
            # and completion delivers nothing.
            heapq.heappush(
                can.pending, (priority, can._seq, None, 0, None, 0)
            )
            can.try_start()

        return babble

    # -- TT cluster ------------------------------------------------------------

    def _make_tt_dispatch(self, proc_name: str, instance: int, when: float):
        def dispatch() -> None:
            graph = self.system.app.graph_of_process(proc_name)
            duration = self.exec_time(proc_name, instance)
            for pred, msg_name in graph.predecessors(proc_name):
                if msg_name is None:
                    continue
                arrival = self._msg_arrival.get((msg_name, instance))
                if not dispatch_respects_arrival(when, arrival):
                    self.trace.violations.append(
                        ScheduleViolation(
                            process=proc_name,
                            instance=instance,
                            dispatch_time=when,
                            missing_message=msg_name,
                            producer=pred,
                            consumer_slot_start=when,
                            consumer_slot_end=when + duration,
                            route=self.system.route(msg_name).name,
                        )
                    )
            self.events.schedule(
                when + duration, lambda: self._tt_complete(proc_name, instance)
            )

        return dispatch

    def _tt_complete(self, proc_name: str, instance: int) -> None:
        now = self.events.now
        release = instance * self.hyper
        self.trace.note_process(proc_name, now - release)
        self._completed.add((proc_name, instance))
        self._note_sink(proc_name, instance, now)
        graph = self.system.app.graph_of_process(proc_name)
        for _succ, msg_name in graph.successors(proc_name):
            if msg_name is not None:
                self._note_journey(msg_name, instance, "producer_finish")
        # Outgoing same-node dependencies feed other TT processes; the
        # schedule table already sequences them — nothing to trigger.
        # Messages are transmitted by the MEDL (TTP slots), not here.

    def _make_ttp_slot(self, node: str, absolute_round: int):
        def transmit() -> None:
            instance, base_round = divmod(absolute_round, self.rounds_per_period)
            frame = self.schedule.medl.get((node, base_round))
            if frame is None or instance >= self.periods:
                return
            end = self.config.bus.slot_end(node, absolute_round)
            for msg_name in frame.messages:
                self.events.schedule(
                    end, self._make_ttp_delivery(msg_name, instance)
                )

        return transmit

    def _make_ttp_delivery(self, msg_name: str, instance: int):
        def deliver() -> None:
            route = self.system.route(msg_name)
            now = self.events.now
            if route is MessageRoute.TT_TO_TT:
                self._msg_arrival.setdefault((msg_name, instance), now)
                self.trace.note_message(
                    msg_name, now - instance * self.hyper
                )
            elif route is MessageRoute.TT_TO_ET:
                # Arrived in the first gateway's MBI; its transfer
                # process T copies the frame into Out_CAN after C_T.
                leg = self._plan.legs_of(msg_name)[0]
                bus = self._cans[leg.cluster]
                self.events.schedule(
                    now + self._transfer[leg.via],
                    lambda: bus.enqueue(msg_name, instance, leg.queue, 0),
                )
            else:  # pragma: no cover - MEDL only carries TT-sent messages
                raise SimulationError(
                    f"unexpected route for MEDL message {msg_name}"
                )

        return deliver

    def _make_gateway_slot(self, gateway: str, absolute_round: int):
        def drain() -> None:
            bus = self.config.bus
            slot = bus.slot_of(gateway)
            end = bus.slot_end(gateway, absolute_round)
            budget = slot.capacity
            fifo = self._out_ttp[gateway]
            queue_name = self._fifo_queue_name(gateway)
            sent: List[Tuple[str, int]] = []
            while fifo:
                msg_name, instance = fifo[0]
                if self.msg_size[msg_name] > budget:
                    break
                budget -= self.msg_size[msg_name]
                sent.append(fifo.pop(0))
                # Packed into the controller's frame: leaves the FIFO now.
                self.adjust_queue(queue_name, -self.msg_size[msg_name])
            for msg_name, instance in sent:
                log = self._journey.setdefault((msg_name, instance), {})
                log.setdefault("gateway_slot_start", self.events.now)
                log.setdefault("gateway_slot_end", end)
                self.events.schedule(
                    end, self._make_gateway_delivery(msg_name, instance)
                )

        return drain

    def _fifo_queue_name(self, gateway: str) -> str:
        for m in self._plan.fifo_users.get(gateway, ()):
            leg = self._plan.fifo_leg(m)
            if leg is not None:
                return leg.queue
        return "Out_TTP" if len(self._out_ttp) == 1 else f"Out_TTP@{gateway}"

    def _make_gateway_delivery(self, msg_name: str, instance: int):
        def deliver() -> None:
            now = self.events.now
            legs = self._plan.legs_of(msg_name)
            pos = next(
                i for i, leg in enumerate(legs) if leg.is_fifo
            )
            if pos == len(legs) - 1:
                # Delivered to the TT destination at the slot's end.
                self._msg_arrival.setdefault((msg_name, instance), now)
                self.trace.note_message(
                    msg_name, now - instance * self.hyper
                )
            else:
                # Transit: every TTP controller heard the frame; the next
                # gateway's transfer process relays it onward after C_T.
                self._advance_leg(msg_name, instance, pos + 1)

        return deliver

    def _advance_leg(self, msg_name: str, instance: int, pos: int) -> None:
        """Hand a message instance to leg ``pos`` of its route (paying
        the entry gateway's transfer delay first)."""
        leg = self._plan.legs_of(msg_name)[pos]
        now = self.events.now
        if leg.is_fifo:
            gateway = leg.sender

            def into_fifo() -> None:
                self._note_journey(msg_name, instance, "fifo_entry")
                self._out_ttp[gateway].append((msg_name, instance))
                self.adjust_queue(leg.queue, +self.msg_size[msg_name])

            self.events.schedule(now + self._transfer[leg.via], into_fifo)
        else:
            bus = self._cans[leg.cluster]
            self.events.schedule(
                now + self._transfer[leg.via],
                lambda: bus.enqueue(msg_name, instance, leg.queue, pos),
            )

    # -- ET cluster ------------------------------------------------------------

    def _make_et_release(self, proc_name: str, instance: int, release: float):
        def activate() -> None:
            self._activate_et(proc_name, instance, release)

        return activate

    def _activate_et(self, proc_name: str, instance: int, release: float) -> None:
        proc = self.system.app.process(proc_name)
        remaining = self.exec_time(proc_name, instance)
        runtime = self.fault_runtime
        if runtime is not None and runtime.node_factor:
            # Same single post-model multiply as the compiled kernel
            # (and as the analysis-side WCET derating) — exact parity.
            remaining = remaining * runtime.speed(proc.node)
        job = _Job(
            name=proc_name,
            instance=instance,
            remaining=remaining,
            priority=self.config.priorities.process_priority(proc_name),
            release=release,
        )
        self._cpus[proc.node].activate(job)

    def on_et_completion(self, job: _Job) -> None:
        now = self.events.now
        release = job.instance * self.hyper
        self.trace.note_process(job.name, now - release)
        self._completed.add((job.name, job.instance))
        self._note_sink(job.name, job.instance, now)
        graph = self.system.app.graph_of_process(job.name)
        for succ, msg_name in graph.successors(job.name):
            if msg_name is None:
                self._input_arrived(succ, job.instance)
            else:
                self._note_journey(msg_name, job.instance, "producer_finish")
                leg = self._plan.legs_of(msg_name)[0]
                self._cans[leg.cluster].enqueue(
                    msg_name, job.instance, leg.queue, 0
                )

    def on_can_delivery(
        self, msg_name: str, instance: int, leg_pos: int = 0
    ) -> None:
        now = self.events.now
        msg = self.system.app.message(msg_name)
        legs = self._plan.legs_of(msg_name)
        self._note_journey(msg_name, instance, "can_delivery")
        if leg_pos < len(legs) - 1:
            # More legs to go: received by the next gateway's controller;
            # its transfer process T relays the frame onward after C_T
            # (into a FIFO for a TT crossing, the canonical ET->TT case,
            # or the next cluster's Out_CAN queue).
            self._advance_leg(msg_name, instance, leg_pos + 1)
            return
        # Final leg: delivered to the receiving ET process.
        self._msg_arrival.setdefault((msg_name, instance), now)
        self.trace.note_message(msg_name, now - instance * self.hyper)
        self._input_arrived(msg.dst, instance)

    def _input_arrived(self, proc_name: str, instance: int) -> None:
        key = (proc_name, instance)
        missing = self._missing.get(key)
        if missing is None:
            return
        missing -= 1
        self._missing[key] = missing
        if missing == 0:
            self._activate_et(proc_name, instance, self.events.now)

    # -- graph bookkeeping -------------------------------------------------------

    def _note_sink(self, proc_name: str, instance: int, now: float) -> None:
        graph = self.system.app.graph_of_process(proc_name)
        if proc_name not in graph.sinks():
            return
        key = (graph.name, instance)
        self._sink_latest[key] = max(self._sink_latest[key], now)
        self._sink_left[key] -= 1
        if self._sink_left[key] == 0:
            release = instance * self.hyper
            self.trace.note_graph(graph.name, self._sink_latest[key] - release)
            self.trace.completed_instances += 1

    # -- run -----------------------------------------------------------------

    def _violation_context(self, violation: ScheduleViolation) -> ScheduleViolation:
        """Annotate a violation with the message's full causal journey.

        Called after the horizon has drained, so stages that happened
        *after* the premature dispatch (the transfer window, the eventual
        arrival) are visible too; stages the simulation never reached
        stay ``None``.
        """
        key = (violation.missing_message, violation.instance)
        log = self._journey.get(key, {})
        return replace(
            violation,
            producer_finish=log.get("producer_finish"),
            can_delivery=log.get("can_delivery"),
            fifo_entry=log.get("fifo_entry"),
            gateway_slot_start=log.get("gateway_slot_start"),
            gateway_slot_end=log.get("gateway_slot_end"),
            message_arrival=self._msg_arrival.get(key),
        )

    def run(self) -> SimulationTrace:
        """Execute the simulation and return the trace."""
        self._seed_events()
        # Allow one extra period of drain time for late completions.
        self.events.run_until((self.periods + 1) * self.hyper)
        # Confirm the violations flagged at dispatch time against the
        # now-complete arrival record: a frame whose delivery event
        # landed within the shared tolerance *after* the dispatch (float
        # skew between the schedule table and the TDMA grid, e.g.
        # 59.999999999999986 vs 60.0) counts as present per the
        # dispatch-eligibility contract.
        confirmed = []
        for violation in self.trace.violations:
            annotated = self._violation_context(violation)
            if not dispatch_respects_arrival(
                annotated.dispatch_time, annotated.message_arrival
            ):
                confirmed.append(annotated)
        self.trace.violations = confirmed
        return self.trace


def simulate(
    system: System,
    config: SystemConfiguration,
    schedule: StaticSchedule,
    periods: int = 4,
    execution: Optional[ExecutionModel] = None,
    context: Optional[SimContext] = None,
    faults=None,
) -> SimulationTrace:
    """Convenience wrapper around :class:`Simulator` (compiled kernel)."""
    return Simulator(
        system, config, schedule, periods=periods, execution=execution,
        context=context, faults=faults,
    ).run()


def legacy_simulate(
    system: System,
    config: SystemConfiguration,
    schedule: StaticSchedule,
    periods: int = 4,
    execution: Optional[ExecutionModel] = None,
    faults=None,
) -> SimulationTrace:
    """One run of the pre-kernel engine (the parity baseline)."""
    return LegacySimulator(
        system, config, schedule, periods=periods, execution=execution,
        faults=faults,
    ).run()
