"""Schedule-table and MEDL artifacts produced by the static scheduler.

On a TTC the kernel of every node activates processes from a local
*schedule table* and the TTP controller transmits frames according to its
*message descriptor list* (MEDL) — section 2.3.  This module holds the
concrete artifacts:

* :class:`ScheduleEntry` — one row of a node's schedule table;
* :class:`FrameSlot` — the contents of one node's TDMA slot in one round
  (several messages may be packed into the frame, bounded by the slot's
  byte capacity);
* :class:`StaticSchedule` — everything together, plus the offset table
  ``φ`` consumed by the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model.architecture import MessageRoute
from ..model.configuration import OffsetTable
from ..semantics import dispatch_respects_arrival, et_to_tt_constraint

__all__ = ["ScheduleEntry", "FrameSlot", "StaticSchedule"]


@dataclass(frozen=True)
class ScheduleEntry:
    """One activation in a node's schedule table."""

    process: str
    start: float
    end: float


@dataclass
class FrameSlot:
    """The frame transmitted by ``node`` in round ``round_index``.

    ``messages`` lists the packed message names in packing order;
    ``used_bytes`` tracks the consumed capacity.
    """

    node: str
    round_index: int
    start: float
    end: float
    capacity: int
    messages: List[str] = field(default_factory=list)
    used_bytes: int = 0

    @property
    def free_bytes(self) -> int:
        """Remaining payload capacity of the frame."""
        return self.capacity - self.used_bytes


@dataclass
class StaticSchedule:
    """Full output of the static scheduling step (the ``φ`` of Fig. 5).

    ``offsets`` is the offset table fed to the response-time analysis.
    ``tables`` maps each TT node to its schedule-table rows (sorted by
    start time).  ``medl`` maps ``(node, round_index)`` to the frame
    transmitted there; only rounds that carry statically scheduled
    messages appear.  ``message_arrival`` gives, for every statically
    routed message (TT->TT and the TTP leg of TT->ET), the absolute time
    the frame is fully received.
    """

    offsets: OffsetTable
    tables: Dict[str, List[ScheduleEntry]]
    medl: Dict[Tuple[str, int], FrameSlot]
    message_arrival: Dict[str, float]
    makespan: float = 0.0

    def table_of(self, node: str) -> List[ScheduleEntry]:
        """Schedule table of one node (empty if the node runs no process)."""
        return self.tables.get(node, [])

    def frame_of(self, msg_name: str) -> Optional[FrameSlot]:
        """The frame carrying a statically scheduled message, if any."""
        for frame in self.medl.values():
            if msg_name in frame.messages:
                return frame
        return None

    def audit_dispatch_eligibility(
        self, system, rho
    ) -> List[Tuple[str, str, float, float]]:
        """Cross-check the tables against the shared dispatch contract.

        For every TT schedule entry and every message it consumes,
        verifies that the dispatch instant respects the message's
        worst-case availability — the statically fixed arrival for
        TT->TT frames, the analytic bound of ``rho`` (a
        :class:`repro.analysis.timing.ResponseTimes`) for ET->TT
        messages — using the same :mod:`repro.semantics` predicate the
        simulator applies at runtime.  Returns ``(process, message,
        dispatch_time, required_arrival)`` tuples for every entry that
        fires too early; an empty list is the analytic half of the
        dominance invariant (the simulation half is
        :mod:`repro.conformance`).
        """
        offenders: List[Tuple[str, str, float, float]] = []
        app = system.app
        for entries in self.tables.values():
            for entry in entries:
                graph = app.graph_of_process(entry.process)
                for _pred, msg_name in graph.predecessors(entry.process):
                    if msg_name is None:
                        continue
                    route = system.route(msg_name)
                    if route is MessageRoute.TT_TO_TT:
                        arrival = self.message_arrival.get(msg_name, 0.0)
                    elif route is MessageRoute.ET_TO_TT:
                        arrival = et_to_tt_constraint(msg_name, rho, None)
                    else:
                        continue
                    if not dispatch_respects_arrival(entry.start, arrival):
                        offenders.append(
                            (entry.process, msg_name, entry.start, arrival)
                        )
        return offenders
