"""Static scheduling of the time-triggered cluster (schedule tables, MEDL)."""

from .asap_alap import alap_starts, slack_of_message, slack_of_process
from .list_scheduler import downstream_urgency, static_schedule
from .schedule_table import FrameSlot, ScheduleEntry, StaticSchedule

__all__ = [
    "FrameSlot",
    "ScheduleEntry",
    "StaticSchedule",
    "alap_starts",
    "downstream_urgency",
    "slack_of_message",
    "slack_of_process",
    "static_schedule",
]
