"""Static list scheduling of the time-triggered cluster.

Implements the ``StaticScheduling`` step of the multi-cluster loop
(Fig. 5), using the list-scheduling approach of the paper's reference [5]:

* TT processes are placed non-preemptively on their node's timeline, in
  order of a critical-path priority (longest remaining WCET path to a
  sink), as soon as their precedence constraints allow;
* outgoing cross-node messages of a TT process are packed into the
  earliest frame of the sender's TDMA slot that starts after the sender
  completes and still has capacity;
* a TT process that receives a message from the ETC may not start before
  the message's worst-case arrival — the constraint that closes the loop
  with the response-time analysis ("offsets on the TTC are set such that
  all the necessary messages are present at the process invocation").

The scheduler also derives the offsets of ET-side activities by forward
propagation (earliest activation), producing the complete offset table
``φ``.  Per-activity extra delays (``tt_delays`` in the system
configuration) implement the OptimizeResources move "move a TT process or
message inside its [ASAP, ALAP] interval".
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..buses.ttp import TTPBusConfig
from ..exceptions import SchedulingError
from ..model.application import ProcessGraph
from ..model.architecture import MessageRoute
from ..model.configuration import OffsetTable
from ..semantics import et_to_tt_constraint
from ..system import System
from ..analysis.timing import ResponseTimes
from .schedule_table import FrameSlot, ScheduleEntry, StaticSchedule

__all__ = ["static_schedule", "downstream_urgency"]

#: Safety horizon: how many TDMA rounds past the estimated makespan a frame
#: search may scan before the schedule is declared infeasible.
_ROUND_SEARCH_MARGIN = 10_000


def downstream_urgency(graph: ProcessGraph) -> Dict[str, float]:
    """Longest WCET path from each process to a sink (inclusive).

    Used as the list-scheduling priority: processes with more work after
    them are scheduled first, the classic critical-path heuristic of [5].
    """
    urgency: Dict[str, float] = {}
    for proc_name in reversed(graph.topological_order()):
        best_tail = 0.0
        for succ, _msg in graph.successors(proc_name):
            best_tail = max(best_tail, urgency[succ])
        urgency[proc_name] = graph.processes[proc_name].wcet + best_tail
    return urgency


class _NodeTimeline:
    """Busy intervals of one TT node, with first-fit gap search."""

    def __init__(self) -> None:
        self._busy: List[Tuple[float, float]] = []

    def earliest_start(self, est: float, duration: float) -> float:
        """First start >= est such that [start, start+duration) is free."""
        start = est
        for begin, end in self._busy:
            if start + duration <= begin + 1e-12:
                break
            if end > start:
                start = end
        return start

    def reserve(self, start: float, end: float) -> None:
        self._busy.append((start, end))
        self._busy.sort()


def _downstream_min_transit(
    system: System, bus: TTPBusConfig, msg_name: str, legs
) -> float:
    """Earliest extra transit of every leg after the first.

    Per additional leg the message pays the entry gateway's transfer
    (the simulator charges exactly ``C_T``) plus the leg's minimal wire
    time: a full CAN frame, or — for a FIFO leg — the carrying TDMA
    slot's duration (delivery is at the slot's *end*; zero queue wait
    is the earliest case).  Used as a sound earliest-arrival offset for
    downstream consumers; the per-leg jitter chain of the analysis
    covers everything later than this.
    """
    extra = 0.0
    for leg in legs[1:]:
        extra += system.arch.transfer_wcet_of(leg.via)
        if leg.is_fifo:
            extra += bus.slot_of(leg.sender).duration
        else:
            extra += system.can_frame_time(msg_name)
    return extra


def static_schedule(
    system: System,
    bus: TTPBusConfig,
    rho: Optional[ResponseTimes] = None,
    tt_delays: Optional[Mapping[str, float]] = None,
    arrival_floors: Optional[Mapping[str, float]] = None,
    routing=None,
) -> StaticSchedule:
    """Build schedule tables, the MEDL and the full offset table ``φ``.

    ``routing`` (a :class:`repro.semantics.routing.RoutingPlan`) supplies
    the leg list of every inter-cluster message on general topologies;
    canonical two-cluster systems ignore it (their single-hop
    conventions are hard-wired below, byte-identical to the paper
    calibration).
    """
    app = system.app
    arch = system.arch
    delays = dict(tt_delays or {})
    if routing is None and system.multi_topology:
        routing = system.default_routing()

    urgency: Dict[str, float] = {}
    for graph in app.graphs.values():
        urgency.update(downstream_urgency(graph))

    timelines: Dict[str, _NodeTimeline] = {
        node: _NodeTimeline() for node in arch.tt_node_names()
    }
    tables: Dict[str, List[ScheduleEntry]] = {
        node: [] for node in arch.tt_node_names()
    }
    medl: Dict[Tuple[str, int], FrameSlot] = {}
    message_arrival: Dict[str, float] = {}
    proc_start: Dict[str, float] = {}
    proc_end: Dict[str, float] = {}

    def frame_for(node: str, msg_name: str, ready: float) -> FrameSlot:
        """Earliest frame of ``node`` with capacity, starting at/after ready."""
        size = app.message(msg_name).size
        slot = bus.slot_of(node)
        if size > slot.capacity:
            raise SchedulingError(
                f"message {msg_name} ({size} B) exceeds the capacity of "
                f"{node}'s slot ({slot.capacity} B)"
            )
        round_index, start = bus.next_slot_start(node, ready)
        for _ in range(_ROUND_SEARCH_MARGIN):
            frame = medl.get((node, round_index))
            if frame is None:
                frame = FrameSlot(
                    node=node,
                    round_index=round_index,
                    start=bus.slot_start(node, round_index),
                    end=bus.slot_end(node, round_index),
                    capacity=slot.capacity,
                )
                medl[(node, round_index)] = frame
            if frame.free_bytes >= size:
                return frame
            round_index += 1
        raise SchedulingError(
            f"no frame with {size} free bytes found for {msg_name} within "
            f"{_ROUND_SEARCH_MARGIN} rounds — TTP slot of {node} overloaded"
        )

    # -- schedule the TT processes, graph set jointly -----------------------
    tt_procs = set(system.tt_processes())
    remaining_preds: Dict[str, int] = {}
    for name in tt_procs:
        graph = app.graph_of_process(name)
        count = 0
        for pred, _msg in graph.predecessors(name):
            if pred in tt_procs:
                count += 1
        remaining_preds[name] = count
    ready = sorted(
        (p for p in tt_procs if remaining_preds[p] == 0),
        key=lambda p: (-urgency[p], p),
    )
    scheduled_count = 0
    while ready:
        current = ready.pop(0)
        graph = app.graph_of_process(current)
        proc = app.process(current)
        est = system.release_of(current) + delays.get(current, 0.0)
        for pred, msg_name in graph.predecessors(current):
            if msg_name is None:
                est = max(est, proc_end.get(pred, 0.0))
                continue
            route = system.route(msg_name)
            if route is MessageRoute.TT_TO_TT:
                est = max(est, message_arrival[msg_name])
            elif route is MessageRoute.ET_TO_TT:
                # Shared dispatch-eligibility contract: the consumer may
                # not start before the message's worst-case availability
                # (repro.semantics; the floors are the Fig. 5 ratchet).
                est = max(
                    est, et_to_tt_constraint(msg_name, rho, arrival_floors)
                )
        start = timelines[proc.node].earliest_start(est, proc.wcet)
        end = start + proc.wcet
        timelines[proc.node].reserve(start, end)
        tables[proc.node].append(ScheduleEntry(current, start, end))
        proc_start[current] = start
        proc_end[current] = end
        scheduled_count += 1

        # Pack this process's outgoing cross-node messages into frames.
        for succ, msg_name in sorted(graph.successors(current)):
            if msg_name is None:
                continue
            route = system.route(msg_name)
            if route not in (MessageRoute.TT_TO_TT, MessageRoute.TT_TO_ET):
                continue
            ready_time = end + delays.get(msg_name, 0.0)
            frame = frame_for(proc.node, msg_name, ready_time)
            frame.messages.append(msg_name)
            frame.used_bytes += app.message(msg_name).size
            message_arrival[msg_name] = frame.end

        for succ, _msg in graph.successors(current):
            if succ in tt_procs:
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.append(succ)
        ready.sort(key=lambda p: (-urgency[p], p))
    if scheduled_count != len(tt_procs):
        raise SchedulingError(
            "static scheduler could not order all TT processes (cycle "
            "through the ETC is not supported by list scheduling)"
        )

    for node_table in tables.values():
        node_table.sort(key=lambda entry: entry.start)

    # -- propagate ET-side offsets (earliest activations) -------------------
    # Conventions (calibrated against the paper's Fig. 4/ section 4.2
    # example; see DESIGN.md):
    #   * ET-sent message:   O_m = O_S + C_S  (earliest sender completion);
    #   * ET process fed by a TT->ET message: O_D = frame arrival at the
    #     gateway MBI (the jitter J_D = r_m covers transfer + CAN);
    #   * ET process fed by an ET->ET message: O_D = O_m + C_m (earliest
    #     possible arrival over CAN);
    #   * same-node dependency: O_D = earliest completion of the
    #     predecessor, O_S + C_S.
    process_offsets: Dict[str, float] = dict(proc_start)
    message_offsets: Dict[str, float] = {}
    for graph in app.graphs.values():
        for proc_name in graph.topological_order():
            if proc_name in tt_procs:
                continue
            earliest = system.release_of(proc_name)
            for pred, msg_name in graph.predecessors(proc_name):
                if msg_name is None:
                    pred_done = process_offsets.get(pred, 0.0) + app.process(pred).wcet
                    earliest = max(earliest, pred_done)
                    continue
                route = system.route(msg_name)
                if route is MessageRoute.TT_TO_ET:
                    arrival = message_arrival[msg_name]
                else:  # ET_TO_ET: earliest send + earliest wire time.
                    sent = process_offsets.get(pred, 0.0) + app.process(pred).wcet
                    arrival = sent + system.can_frame_time(msg_name)
                if routing is not None:
                    # Multi-hop routes: the canonical anchor above covers
                    # the first leg only; add the minimal transit of every
                    # further leg (still a lower bound on the true
                    # arrival — the analysis jitter covers the rest).
                    legs = routing.legs_of(msg_name)
                    if legs is not None and len(legs) > 1:
                        arrival += _downstream_min_transit(
                            system, bus, msg_name, legs
                        )
                earliest = max(earliest, arrival)
            process_offsets[proc_name] = earliest
    for msg in app.all_messages():
        route = system.route(msg.name)
        if route in (MessageRoute.TT_TO_TT, MessageRoute.TT_TO_ET):
            message_offsets[msg.name] = message_arrival[msg.name]
        else:
            message_offsets[msg.name] = (
                process_offsets[msg.src] + app.process(msg.src).wcet
            )

    makespan = max(proc_end.values(), default=0.0)
    offsets = OffsetTable(process_offsets, message_offsets)
    return StaticSchedule(
        offsets=offsets,
        tables=tables,
        medl=medl,
        message_arrival=message_arrival,
        makespan=makespan,
    )
