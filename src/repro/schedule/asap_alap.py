"""ASAP / ALAP intervals for TT activities (move generation support).

The OptimizeResources neighborhood (section 5.1) moves a TT process or
message "inside its [ASAP, ALAP] interval calculated based on the current
values for the offsets and response times".  This module computes those
intervals:

* **ASAP** — the earliest start permitted by precedence alone (resource
  contention ignored), i.e. the activity's current lower bound;
* **ALAP** — the latest start from which the remaining critical path can
  still meet the graph deadline (communication delays estimated with the
  current response times when available, otherwise 0).

The interval width bounds the extra delay a move may inject without making
the configuration trivially unschedulable; the multi-cluster loop then
re-derives an exact schedule and the move is kept only if the system stays
schedulable.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..analysis.timing import ResponseTimes
from ..model.application import ProcessGraph
from ..system import System

__all__ = ["alap_starts", "slack_of_process", "slack_of_message"]


def alap_starts(
    system: System, graph: ProcessGraph, rho: Optional[ResponseTimes] = None
) -> Dict[str, float]:
    """Latest start of each process of ``graph`` to meet its deadline.

    Backward longest-path pass.  Cross-node arcs are charged the current
    worst-case message latency (``r_m`` from ``rho``) when available.
    """
    alap: Dict[str, float] = {}
    for proc_name in reversed(graph.topological_order()):
        proc = graph.processes[proc_name]
        limit = graph.deadline - proc.wcet
        if proc.deadline is not None:
            limit = min(limit, proc.deadline - proc.wcet)
        for succ, msg_name in graph.successors(proc_name):
            comm = 0.0
            if msg_name is not None and rho is not None:
                comm = _message_latency(system, msg_name, rho)
            limit = min(limit, alap[succ] - comm - proc.wcet)
        alap[proc_name] = limit
    return alap


def _message_latency(system: System, msg_name: str, rho: ResponseTimes) -> float:
    """Current worst-case latency of a message, by route.

    TT->TT messages return 0: their latency is already folded into the
    schedule-table offsets.
    """
    if msg_name in rho.ttp:
        timing = rho.ttp[msg_name]
    elif msg_name in rho.can:
        timing = rho.can[msg_name]
    else:
        return 0.0
    r = timing.response
    return 0.0 if math.isinf(r) else r


def slack_of_process(
    system: System,
    proc_name: str,
    current_offset: float,
    rho: Optional[ResponseTimes] = None,
) -> float:
    """Largest extra delay for ``proc_name`` inside its [ASAP, ALAP] window."""
    graph = system.app.graph_of_process(proc_name)
    alap = alap_starts(system, graph, rho)
    return max(0.0, alap[proc_name] - current_offset)


def slack_of_message(
    system: System,
    msg_name: str,
    current_arrival: float,
    rho: Optional[ResponseTimes] = None,
) -> float:
    """Largest extra delay for a statically scheduled message.

    Bounded by the receiving process's ALAP minus the message's current
    arrival time.
    """
    msg = system.app.message(msg_name)
    graph = system.app.graph_of_message(msg_name)
    alap = alap_starts(system, graph, rho)
    return max(0.0, alap[msg.dst] - current_arrival)
