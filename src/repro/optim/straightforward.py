"""The straightforward (SF) baseline configuration of section 6.

SF makes no effort on the bus configuration: nodes are allocated to TDMA
slots in plain ascending name order and each slot is sized to the largest
message its node transmits ("a straightforward ascending order of
allocation of the nodes to the TDMA slots; the slot lengths were selected
to accommodate the largest message sent by the respective node").
Priorities use the same HOPA assignment as the optimized heuristics, so
the SF-vs-OS comparison isolates the bus-access decisions — the subject
of Fig. 9a.  The multi-cluster scheduling algorithm is then run once.

In the paper SF fails to schedule 26 of 150 generated applications and is
the reference point the OS heuristic improves on.
"""

from __future__ import annotations

from ..model.configuration import SystemConfiguration
from ..system import System
from .common import Evaluation, evaluate
from .hopa import hopa_priorities
from .slots import build_bus, default_capacities

__all__ = ["straightforward_configuration", "run_straightforward"]


def straightforward_configuration(system: System) -> SystemConfiguration:
    """Build the SF configuration ``ψ`` (see module docstring)."""
    order = system.arch.ttp_slot_owners()  # ascending, gateway last
    bus = build_bus(system, order, default_capacities(system))
    return SystemConfiguration(bus=bus, priorities=hopa_priorities(system))


def run_straightforward(system: System) -> Evaluation:
    """Evaluate the SF baseline."""
    return evaluate(system, straightforward_configuration(system))
