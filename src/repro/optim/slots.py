"""TDMA slot construction helpers shared by the synthesis heuristics.

Builds ``β`` candidates: slot sequences with per-node byte capacities,
durations derived from the system's :class:`TTPBusSpec`, and the
"recommended slot lengths" of OptimizeSchedule (Fig. 8) — the candidate
capacities worth trying for a node, derived from the sizes of the messages
the node actually transmits on the TTP bus (reference [5] generates these
from a scheduling pass; cumulative sums of the frame contents are the
useful break points).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..buses.ttp import Slot, TTPBusConfig
from ..model.architecture import MessageRoute
from ..model.validation import minimum_slot_capacity
from ..system import System

__all__ = [
    "messages_sent_over_ttp",
    "recommended_capacities",
    "build_bus",
    "default_capacities",
]


def messages_sent_over_ttp(system: System, node: str) -> List[int]:
    """Sizes of the messages ``node`` transmits in its TDMA slot.

    For a TTC node: its TT->TT and TT->ET messages.  For the gateway: the
    relayed ET->TT messages.
    """
    sizes: List[int] = []
    plan = system.default_routing() if system.multi_topology else None
    for msg in system.app.all_messages():
        route = system.route(msg.name)
        if route in (MessageRoute.TT_TO_TT, MessageRoute.TT_TO_ET):
            if system.app.process(msg.src).node == node:
                sizes.append(msg.size)
        elif plan is not None:
            # A relayed message occupies the slot of the gateway that
            # holds its FIFO leg (the TDMA transmitter on its route).
            leg = plan.fifo_leg(msg.name)
            if leg is not None and leg.via == node:
                sizes.append(msg.size)
        elif route is MessageRoute.ET_TO_TT and node == system.arch.gateway:
            sizes.append(msg.size)
    return sizes


def recommended_capacities(
    system: System, node: str, max_candidates: int = 6
) -> List[int]:
    """Candidate slot capacities for ``node`` (ascending, deduplicated).

    The smallest legal capacity (largest single message) plus the
    cumulative sums of the message sizes in descending-size order — the
    capacities at which one more message fits into the same frame.
    """
    sizes = sorted(messages_sent_over_ttp(system, node), reverse=True)
    floor = minimum_slot_capacity(system.app, system.arch, node)
    candidates = {floor}
    running = 0
    for size in sizes:
        running += size
        candidates.add(max(running, floor))
    ordered = sorted(candidates)
    if len(ordered) > max_candidates:
        # Keep the floor, the total, and evenly spaced interior points.
        keep = {ordered[0], ordered[-1]}
        step = (len(ordered) - 1) / (max_candidates - 1)
        for i in range(1, max_candidates - 1):
            keep.add(ordered[round(i * step)])
        ordered = sorted(keep)
    return ordered


def default_capacities(system: System) -> Dict[str, int]:
    """Minimal legal capacity per TTP transmitter (the SF/initial choice)."""
    return {
        node: minimum_slot_capacity(system.app, system.arch, node)
        for node in system.arch.ttp_slot_owners()
    }


def build_bus(
    system: System, node_order: Sequence[str], capacities: Dict[str, int]
) -> TTPBusConfig:
    """Assemble a ``β`` from a slot order and per-node capacities."""
    slots = []
    for node in node_order:
        capacity = capacities[node]
        duration = system.ttp_spec.slot_duration(capacity)
        slots.append(Slot(node=node, capacity=capacity, duration=duration))
    return TTPBusConfig(slots)
