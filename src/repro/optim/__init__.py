"""Synthesis heuristics: SF, HOPA, OS, OR and the SA baselines (section 5)."""

from .annealing import SAResult, sa_resources, sa_schedule, simulated_annealing
from .common import Evaluation, evaluate, evaluation_from_run
from .hopa import hopa_priorities, local_deadlines
from .moves import (
    DelayActivity,
    Move,
    ResizeSlot,
    SwapMessagePriorities,
    SwapProcessPriorities,
    SwapSlots,
    generate_neighbors,
    random_move,
)
from .optimize_resources import ORResult, optimize_resources
from .optimize_schedule import OSResult, SeedPool, optimize_schedule
from .routing import (
    RerouteMessage,
    fit_bus_to_routes,
    greedy_routes,
    route_candidates,
    route_moves,
)
from .slots import (
    build_bus,
    default_capacities,
    messages_sent_over_ttp,
    recommended_capacities,
)
from .straightforward import run_straightforward, straightforward_configuration

__all__ = [
    "DelayActivity",
    "Evaluation",
    "Move",
    "ORResult",
    "OSResult",
    "RerouteMessage",
    "ResizeSlot",
    "SAResult",
    "SeedPool",
    "SwapMessagePriorities",
    "SwapProcessPriorities",
    "SwapSlots",
    "build_bus",
    "default_capacities",
    "evaluate",
    "evaluation_from_run",
    "fit_bus_to_routes",
    "generate_neighbors",
    "greedy_routes",
    "hopa_priorities",
    "local_deadlines",
    "messages_sent_over_ttp",
    "optimize_resources",
    "optimize_schedule",
    "random_move",
    "recommended_capacities",
    "route_candidates",
    "route_moves",
    "run_straightforward",
    "sa_resources",
    "sa_schedule",
    "simulated_annealing",
]
