"""HOPA — heuristic optimized priority assignment (paper reference [7],
Gutierrez Garcia & Gonzalez Harbour 1995).

HOPA turns end-to-end deadlines into *local* deadlines for every process
and message of a transaction, assigns priorities deadline-monotonically
from those local deadlines, analyses the system, and redistributes the
local deadlines based on where the slack or excess concentrates.  The
paper uses it to pick the ``π`` of every candidate configuration explored
by OptimizeSchedule.

This implementation:

1. distributes each graph's deadline over its activities proportionally to
   their cost along the longest path reaching them (WCET for processes,
   worst-case frame time for messages);
2. assigns priorities deadline-monotonically — per node for processes,
   bus-wide for CAN messages (unique tie-broken values);
3. optionally iterates: after an analysis pass, local deadlines are
   re-distributed proportionally to the *observed* worst-case completion
   times, shifting priority toward the activities that actually lag.

Iteration count 1 reproduces the cheap assignment used inside the OS inner
loop; larger counts give the full HOPA refinement.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..buses.ttp import TTPBusConfig
from ..model.architecture import MessageRoute
from ..model.configuration import PriorityAssignment
from ..system import System
from .common import Evaluation, evaluate
from ..model.configuration import SystemConfiguration

__all__ = ["hopa_priorities", "local_deadlines"]


def _activity_costs(system: System, graph) -> Dict[str, float]:
    """Cost of each activity: WCET, or frame time for CAN messages."""
    costs: Dict[str, float] = {}
    for proc in graph.processes.values():
        costs[proc.name] = max(proc.wcet, 1e-9)
    for msg in graph.messages.values():
        route = system.route(msg.name)
        if route is MessageRoute.TT_TO_TT:
            cost = 0.0
        else:
            cost = system.can_frame_time(msg.name)
        costs[msg.name] = max(cost, 1e-9)
    return costs


def local_deadlines(
    system: System, weights: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Deadline share of every activity (processes and messages).

    The graph deadline is distributed along paths proportionally to the
    (weighted) activity costs: an activity's local deadline is
    ``D_G * cum_cost(activity) / path_cost`` where ``cum_cost`` follows the
    longest-cost path from the sources.  ``weights`` (same keys) scale the
    base costs, which is how the iterative refinement steers the split.
    """
    deadlines: Dict[str, float] = {}
    for graph in system.app.graphs.values():
        costs = _activity_costs(system, graph)
        if weights:
            for key in costs:
                costs[key] *= weights.get(key, 1.0)
        # Longest-cost cumulative position of each activity.
        cum: Dict[str, float] = {}
        for proc_name in graph.topological_order():
            best = 0.0
            for pred, msg_name in graph.predecessors(proc_name):
                via = cum[pred]
                if msg_name is not None:
                    via += costs[msg_name]
                best = max(best, via)
            cum[proc_name] = best + costs[proc_name]
        total = max(
            (
                cum[proc]
                + max(
                    (
                        costs[m]
                        for m in graph.messages
                        if graph.messages[m].src == proc
                    ),
                    default=0.0,
                )
                for proc in graph.processes
            ),
            default=1e-9,
        )
        total = max(total, 1e-9)
        scale = graph.deadline / total
        for proc_name in graph.processes:
            deadlines[proc_name] = cum[proc_name] * scale
        for msg_name, msg in graph.messages.items():
            deadlines[msg_name] = (cum[msg.src] + costs[msg_name]) * scale
    return deadlines


def _priorities_from_deadlines(
    system: System, deadlines: Dict[str, float]
) -> PriorityAssignment:
    """Deadline-monotonic priority tables (smaller deadline = higher)."""
    proc_prios: Dict[str, int] = {}
    for node in system.arch.nodes:
        if not system.arch.is_et_node(node):
            continue
        procs = system.et_processes_on(node)
        ranked = sorted(procs, key=lambda p: (deadlines.get(p, math.inf), p))
        for rank, name in enumerate(ranked, start=1):
            proc_prios[name] = rank
    msg_prios: Dict[str, int] = {}
    ranked_msgs = sorted(
        system.can_messages(), key=lambda m: (deadlines.get(m, math.inf), m)
    )
    for rank, name in enumerate(ranked_msgs, start=1):
        msg_prios[name] = rank
    return PriorityAssignment(proc_prios, msg_prios)


def hopa_priorities(
    system: System,
    bus: Optional[TTPBusConfig] = None,
    iterations: int = 1,
    session=None,
) -> PriorityAssignment:
    """Compute a HOPA priority assignment.

    With ``iterations == 1`` the deadline-proportional split is used
    directly (no analysis pass — this is the fast mode OptimizeSchedule
    calls in its inner loop).  With more iterations and a ``bus`` to
    analyse against, local deadlines are refined from observed completion
    times and the best assignment (by ``δΓ``) is returned.  The
    refinement's analysis runs route through ``session`` when given.
    """
    deadlines = local_deadlines(system)
    priorities = _priorities_from_deadlines(system, deadlines)
    if iterations <= 1 or bus is None:
        return priorities
    if session is None:
        # A private session so the refinement's analysis passes share
        # one compiled kernel (each pass only flips priorities, which
        # the kernel absorbs as an incremental row recompile).
        from ..api.session import Session

        session = Session(system)
    best = priorities
    best_degree = math.inf
    weights: Dict[str, float] = {}
    for _ in range(iterations):
        priorities = _priorities_from_deadlines(system, deadlines)
        evaluation = evaluate(
            system,
            SystemConfiguration(bus=bus, priorities=priorities),
            session=session,
        )
        if evaluation.degree < best_degree:
            best_degree = evaluation.degree
            best = priorities
        if not evaluation.feasible or evaluation.result is None:
            break
        rho = evaluation.result.rho
        weights = {}
        for name, timing in rho.processes.items():
            r = timing.response
            weights[name] = 1.0 + (r if math.isfinite(r) else 1e6)
        for name, timing in rho.can.items():
            r = timing.response
            weights[name] = 1.0 + (r if math.isfinite(r) else 1e6)
        deadlines = local_deadlines(system, weights)
    return best
