"""OptimizeSchedule (OS) — the greedy bus-access/priority synthesis of
Fig. 8.

OS searches for the configuration with the best (smallest) degree of
schedulability ``δΓ``:

* slots are considered left to right; for each slot position every not yet
  fixed node is tried, and for each node every *recommended* slot capacity
  (see :func:`repro.optim.slots.recommended_capacities`);
* each candidate ``β`` is completed with HOPA priorities ``π`` and scored
  by running the full multi-cluster scheduling loop;
* the node/length pair with the best ``δΓ`` is fixed and the next slot
  position is processed;
* along the way the best configurations — both by ``δΓ`` and, among the
  schedulable ones, by ``s_total`` — are recorded as *seed solutions* for
  the OptimizeResources hill climber (section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..model.configuration import SystemConfiguration
from ..system import System
from .common import Evaluation, evaluate
from .hopa import hopa_priorities
from .slots import build_bus, default_capacities, recommended_capacities

__all__ = ["SeedPool", "OSResult", "optimize_schedule"]


class SeedPool:
    """Collects the seed solutions of OptimizeSchedule.

    Keeps up to ``limit`` configurations with the best degree of
    schedulability and up to ``limit`` schedulable configurations with the
    smallest total buffer need — the two families the paper observed to be
    good hill-climbing starting points.
    """

    def __init__(self, limit: int = 5) -> None:
        self.limit = limit
        self._by_degree: List[Evaluation] = []
        self._by_buffers: List[Evaluation] = []

    def add(self, evaluation: Evaluation) -> None:
        """Consider one evaluated configuration for the pool."""
        if not evaluation.feasible:
            return
        self._by_degree.append(evaluation)
        self._by_degree.sort(key=lambda e: e.degree)
        del self._by_degree[self.limit :]
        if evaluation.schedulable:
            self._by_buffers.append(evaluation)
            self._by_buffers.sort(key=lambda e: e.total_buffers)
            del self._by_buffers[self.limit :]

    def seeds(self) -> List[Evaluation]:
        """The pooled seeds, de-duplicated, best-buffer seeds first."""
        out: List[Evaluation] = []
        seen = set()
        for evaluation in self._by_buffers + self._by_degree:
            key = id(evaluation)
            if key not in seen:
                seen.add(key)
                out.append(evaluation)
        return out


@dataclass
class OSResult:
    """Outcome of OptimizeSchedule."""

    best: Evaluation
    seeds: List[Evaluation] = field(default_factory=list)
    evaluations: int = 0

    @property
    def schedulable(self) -> bool:
        """Whether the best configuration meets all deadlines."""
        return self.best.schedulable


def optimize_schedule(
    system: System,
    seed_limit: int = 5,
    hopa_iterations: int = 1,
    max_capacity_candidates: int = 5,
    session=None,
) -> OSResult:
    """Run the greedy OS heuristic; see module docstring.

    ``hopa_iterations`` > 1 enables the iterative HOPA refinement for the
    final (fixed) bus configuration; inside the greedy loop the fast
    deadline-proportional assignment is always used, as one analysis run
    per candidate is already the dominating cost.

    ``session`` (a :class:`repro.api.session.Session`) routes all
    analysis runs through the facade's memo cache; candidate ``β``/``π``
    pairs the greedy loop revisits are then scored only once.  When no
    session is given a private one is created, so every OS run gets the
    compiled-kernel hot path (one interference-table compile, then
    incremental recompiles per candidate) and in-run memoization.
    """
    if session is None:
        from ..api.session import Session

        session = Session(system)
    pool = SeedPool(limit=seed_limit)
    priorities = hopa_priorities(system)
    order = list(system.arch.ttp_slot_owners())
    capacities = default_capacities(system)
    evaluations = 0
    best_overall: Optional[Evaluation] = None

    for position in range(len(order)):
        best_for_slot: Optional[Evaluation] = None
        best_node_index: Optional[int] = None
        best_capacity: Optional[int] = None
        for candidate_index in range(position, len(order)):
            node = order[candidate_index]
            tentative = list(order)
            tentative[position], tentative[candidate_index] = (
                tentative[candidate_index],
                tentative[position],
            )
            for capacity in recommended_capacities(
                system, node, max_candidates=max_capacity_candidates
            ):
                caps = dict(capacities)
                caps[node] = capacity
                config = SystemConfiguration(
                    bus=build_bus(system, tentative, caps),
                    priorities=priorities.copy(),
                )
                evaluation = evaluate(system, config, session=session)
                evaluations += 1
                pool.add(evaluation)
                if best_overall is None or evaluation.degree < best_overall.degree:
                    best_overall = evaluation
                if best_for_slot is None or evaluation.degree < best_for_slot.degree:
                    best_for_slot = evaluation
                    best_node_index = candidate_index
                    best_capacity = capacity
        if best_node_index is not None:
            node = order[best_node_index]
            order[position], order[best_node_index] = (
                order[best_node_index],
                order[position],
            )
            if best_capacity is not None:
                capacities[node] = best_capacity

    if best_overall is None:  # pragma: no cover - defensive
        raise RuntimeError("OptimizeSchedule evaluated no configuration")

    if hopa_iterations > 1 and best_overall.feasible:
        refined = hopa_priorities(
            system,
            bus=best_overall.config.bus,
            iterations=hopa_iterations,
            session=session,
        )
        config = SystemConfiguration(
            bus=best_overall.config.bus, priorities=refined
        )
        evaluation = evaluate(system, config, session=session)
        evaluations += 1
        pool.add(evaluation)
        if evaluation.degree < best_overall.degree:
            best_overall = evaluation

    return OSResult(best=best_overall, seeds=pool.seeds(), evaluations=evaluations)
