"""Shared evaluation machinery for the synthesis heuristics (section 5).

Every heuristic — SF, OS, OR, SAS, SAR — scores a candidate configuration
``ψ`` the same way: run :func:`multi_cluster_scheduling`, then compute the
degree of schedulability ``δΓ`` and the buffer bound ``s_total``.  The
:class:`Evaluation` record bundles the outcome; configurations that cannot
be scheduled at all (e.g. a slot too small for a frame) are mapped to a
large finite penalty so the heuristics keep a total order.

Since the :mod:`repro.api` facade the evaluation itself lives in the
``"analysis"`` backend (:class:`repro.api.backends.AnalysisBackend`);
this module adapts its :class:`repro.api.result.RunResult` into the
:class:`Evaluation` shape the heuristics climb on, and routes through a
:class:`repro.api.session.Session` when the caller provides one (gaining
configuration-hash memoization across optimizer iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.buffers import BufferReport
from ..analysis.degree import SchedulabilityReport
from ..analysis.multicluster import MultiClusterResult
from ..api.backends import AnalysisBackend
from ..api.result import INFEASIBLE_COST, RunResult
from ..model.configuration import SystemConfiguration
from ..system import System

__all__ = ["Evaluation", "evaluate", "evaluation_from_run", "INFEASIBLE_COST"]

#: Shared stateless backend instance for session-less evaluation calls.
_ANALYSIS = AnalysisBackend()


@dataclass
class Evaluation:
    """Scored configuration ``ψ`` (see module docstring).

    ``degree`` is the paper's ``δΓ`` cost (smaller = better, <= 0 means
    schedulable); ``total_buffers`` is ``s_total`` in bytes.  ``error``
    carries the reason when the configuration could not be evaluated.
    """

    config: SystemConfiguration
    result: Optional[MultiClusterResult] = None
    report: Optional[SchedulabilityReport] = None
    buffers: Optional[BufferReport] = None
    error: Optional[str] = None
    #: Store-addressable provenance: the configuration hash the session
    #: memoized (and persisted) this evaluation under.  ``None`` for
    #: session-less evaluations, which are never cached or stored.
    config_hash: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """True when the configuration could be analysed at all."""
        return self.error is None

    @property
    def schedulable(self) -> bool:
        """True when every deadline is met."""
        return self.report is not None and self.report.schedulable

    @property
    def degree(self) -> float:
        """``δΓ`` cost; INFEASIBLE_COST when not analysable."""
        if self.report is None:
            return INFEASIBLE_COST
        return self.report.degree

    @property
    def total_buffers(self) -> float:
        """``s_total``; INFEASIBLE_COST when not analysable."""
        if self.buffers is None:
            return INFEASIBLE_COST
        return self.buffers.total


def evaluation_from_run(run: RunResult) -> Evaluation:
    """Adapt a facade :class:`RunResult` into the heuristics' record."""
    provenance = run.metadata.get("config_hash")
    if not run.feasible:
        return Evaluation(
            config=run.config, error=run.error, config_hash=provenance
        )
    return Evaluation(
        config=run.config,
        result=run.analysis,
        report=run.report,
        buffers=run.buffers,
        config_hash=provenance,
    )


def evaluate(
    system: System,
    config: SystemConfiguration,
    session=None,
) -> Evaluation:
    """Run the full analysis pipeline on one configuration.

    ``session`` (a :class:`repro.api.session.Session`) is optional; when
    given, the run is memoized by configuration hash so optimizers that
    revisit a configuration pay for it once, and all analysis passes
    share the session's compiled kernel
    (:class:`repro.analysis.kernel.AnalysisContext`) — one full
    interference-table compile per session, incremental recompiles per
    move.  The session must wrap the same :class:`System` instance —
    evaluating against a different system than the one the heuristic
    planned for would silently score the wrong problem.  Session-less
    calls still run on a kernel compiled for the single evaluation (the
    multi-cluster loop reuses it across its up-to-30 analysis passes).
    """
    if session is not None:
        if session.system is not system:
            raise ValueError(
                "session wraps a different System than the one being "
                "evaluated; pass a Session(system) for this system"
            )
        run = session.evaluate(config, backend="analysis")
    else:
        run = _ANALYSIS.run(system, config)
    return evaluation_from_run(run)
