"""Shared evaluation machinery for the synthesis heuristics (section 5).

Every heuristic — SF, OS, OR, SAS, SAR — scores a candidate configuration
``ψ`` the same way: run :func:`multi_cluster_scheduling`, then compute the
degree of schedulability ``δΓ`` and the buffer bound ``s_total``.  The
:class:`Evaluation` record bundles the outcome; configurations that cannot
be scheduled at all (e.g. a slot too small for a frame) are mapped to a
large finite penalty so the heuristics keep a total order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..analysis.buffers import BufferReport, buffer_bounds
from ..analysis.degree import SchedulabilityReport, degree_of_schedulability
from ..analysis.multicluster import MultiClusterResult, multi_cluster_scheduling
from ..exceptions import AnalysisError, ConfigurationError, SchedulingError
from ..model.configuration import SystemConfiguration
from ..model.validation import validate_configuration
from ..system import System

__all__ = ["Evaluation", "evaluate", "INFEASIBLE_COST"]

#: Cost assigned to configurations that cannot be evaluated at all.
INFEASIBLE_COST = 1e15


@dataclass
class Evaluation:
    """Scored configuration ``ψ`` (see module docstring).

    ``degree`` is the paper's ``δΓ`` cost (smaller = better, <= 0 means
    schedulable); ``total_buffers`` is ``s_total`` in bytes.  ``error``
    carries the reason when the configuration could not be evaluated.
    """

    config: SystemConfiguration
    result: Optional[MultiClusterResult] = None
    report: Optional[SchedulabilityReport] = None
    buffers: Optional[BufferReport] = None
    error: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """True when the configuration could be analysed at all."""
        return self.error is None

    @property
    def schedulable(self) -> bool:
        """True when every deadline is met."""
        return self.report is not None and self.report.schedulable

    @property
    def degree(self) -> float:
        """``δΓ`` cost; INFEASIBLE_COST when not analysable."""
        if self.report is None:
            return INFEASIBLE_COST
        return self.report.degree

    @property
    def total_buffers(self) -> float:
        """``s_total``; INFEASIBLE_COST when not analysable."""
        if self.buffers is None:
            return INFEASIBLE_COST
        return self.buffers.total


def evaluate(system: System, config: SystemConfiguration) -> Evaluation:
    """Run the full analysis pipeline on one configuration."""
    try:
        validate_configuration(system.app, system.arch, config)
        result = multi_cluster_scheduling(
            system,
            config.bus,
            config.priorities,
            tt_delays=config.tt_delays,
        )
    except (SchedulingError, AnalysisError, ConfigurationError) as exc:
        return Evaluation(config=config, error=str(exc))
    config.offsets = result.offsets
    report = degree_of_schedulability(system, result.rho)
    buffers = buffer_bounds(system, config.priorities, result.rho)
    if not result.converged:
        # Treat a non-converged outer loop as unschedulable with a large
        # but ordered penalty (section 4's termination conditions failed).
        report = SchedulabilityReport(
            degree=max(report.degree, 0.0) + INFEASIBLE_COST / 1e3,
            schedulable=False,
            graph_responses=report.graph_responses,
        )
    return Evaluation(
        config=config, result=result, report=report, buffers=buffers
    )
