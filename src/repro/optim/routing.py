"""Routing synthesis: the fourth configuration dimension (PR 8).

On the canonical two-cluster topology every inter-cluster message has
exactly one route, so routing is not a decision.  The moment a cluster
pair is bridged by parallel gateways — or a third cluster opens a
detour — the route becomes a synthesis knob with real timing
consequences: it selects which gateway's ``Out_CAN``/``Out_TTP`` queues
the message competes in, which TDMA slot drains it, and which CAN bus
it arbitrates on.

Two entry points:

* :func:`greedy_routes` — the seed: every message takes its shortest
  *feasible* route (slot capacities can carry it), with ties broken by
  greedily balancing accumulated byte load across gateways (largest
  messages placed first) and then lexicographically.  On canonical
  topologies the result is always empty — the default routes stand.
* :func:`route_moves` / :class:`RerouteMessage` — the neighborhood: one
  move per alternative route of each inter-cluster message, consumed by
  the hill climber and the annealers next to the classic slot, priority
  and delay families (:mod:`repro.optim.moves`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..buses.ttp import TTPBusConfig
from ..model.configuration import SystemConfiguration
from ..system import System
from .moves import Move

__all__ = [
    "RerouteMessage",
    "route_candidates",
    "greedy_routes",
    "route_moves",
    "fit_bus_to_routes",
]


def fit_bus_to_routes(
    system: System,
    bus: TTPBusConfig,
    routes: Optional[Dict[str, Tuple[str, ...]]],
) -> TTPBusConfig:
    """Grow TDMA slot capacities until every routed message fits.

    Canonical slot sizing assumes default routing; a route override can
    relay a message through a gateway whose minimal slot cannot carry
    it.  This returns ``bus`` unchanged when every relaying slot is
    already large enough (the default-routing case in particular), else
    a copy with the affected capacities raised to the largest relayed
    payload — durations are never touched, so the TDMA tiling and the
    round length stay as configured.
    """
    plan = system.routing_for(routes or None)
    need: Dict[str, int] = {}
    for name in plan.routes:
        leg = plan.fifo_leg(name)
        if leg is not None:
            size = system.app.message(name).size
            need[leg.via] = max(need.get(leg.via, 0), size)
    slots = []
    changed = False
    for slot in bus.slots:
        required = need.get(slot.node, 0)
        if required > slot.capacity:
            slots.append(
                type(slot)(
                    node=slot.node,
                    capacity=required,
                    duration=slot.duration,
                )
            )
            changed = True
        else:
            slots.append(slot)
    return type(bus)(slots) if changed else bus


@dataclass(frozen=True)
class RerouteMessage(Move):
    """Set one message's gateway route (the routing move family).

    ``is_default`` marks the topology's own shortest route: applying it
    *removes* the override so the configuration stays canonical (an
    empty ``routes`` dict hashes like a pre-routing config).
    """

    message: str
    route: Tuple[str, ...]
    is_default: bool = False

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        new = config.copy()
        if self.is_default:
            new.routes.pop(self.message, None)
        else:
            new.routes[self.message] = tuple(self.route)
        return new

    def describe(self) -> str:
        path = "->".join(self.route) if self.route else "direct"
        tag = " (default)" if self.is_default else ""
        return f"reroute {self.message} via {path}{tag}"


def _slot_feasible(
    system: System,
    bus: Optional[TTPBusConfig],
    msg_name: str,
    route: Tuple[str, ...],
) -> bool:
    """Every TT-entering hop's TDMA slot can carry the message."""
    if bus is None:
        return True
    topo = system.arch.topology
    size = system.app.message(msg_name).size
    src, _dst = system.clusters_of_message(msg_name)
    current = src
    for hop in route:
        current = topo.gateways[hop].other(current)
        if topo.clusters[current].kind != "TT":
            continue
        try:
            slot = bus.slot_of(hop)
        except Exception:
            return False  # the relaying gateway owns no TTP slot
        if slot.capacity < size:
            return False
    return True


def route_candidates(
    system: System,
    msg_name: str,
    bus: Optional[TTPBusConfig] = None,
    max_hops: int = 4,
) -> List[Tuple[str, ...]]:
    """Feasible routes of one message, shortest first.

    Empty for intra-cluster messages.  When slot capacities rule out
    *every* route, the unfiltered candidate list is returned — an
    infeasible route the evaluator rejects loudly beats silently
    dropping the message.
    """
    src, dst = system.clusters_of_message(msg_name)
    if src == dst:
        return []
    topo = system.arch.topology
    routes = topo.routes_between(src, dst, max_hops=max_hops)
    feasible = [
        r for r in routes if _slot_feasible(system, bus, msg_name, r)
    ]
    return feasible or routes


def greedy_routes(
    system: System,
    bus: Optional[TTPBusConfig] = None,
    max_hops: int = 4,
) -> Dict[str, Tuple[str, ...]]:
    """The greedy shortest-feasible-route seed (see module docstring).

    Returns only the non-default decisions, so the canonical topology —
    and any topology without routing freedom — yields ``{}`` and the
    seeded configuration hashes unchanged.
    """
    topo = system.arch.topology
    load: Dict[str, float] = {g: 0.0 for g in topo.gateway_names()}
    overrides: Dict[str, Tuple[str, ...]] = {}
    crossing = []
    for msg in system.app.all_messages():
        src, dst = system.clusters_of_message(msg.name)
        if src != dst:
            crossing.append((msg.name, msg.size))
    # Largest first: the hardest messages get first pick of the
    # emptiest gateways; name breaks ties deterministically.
    crossing.sort(key=lambda item: (-item[1], item[0]))
    for name, size in crossing:
        candidates = route_candidates(system, name, bus, max_hops)
        best = min(
            candidates,
            key=lambda r: (len(r), sum(load[g] for g in r), r),
        )
        for hop in best:
            load[hop] += size
        src, dst = system.clusters_of_message(name)
        if best != topo.default_route(src, dst):
            overrides[name] = best
    return overrides


def route_moves(
    system: System,
    config: SystemConfiguration,
    max_hops: int = 4,
) -> List[Move]:
    """One :class:`RerouteMessage` per alternative route per message.

    Empty on canonical topologies (every message has exactly one
    route), which keeps the classic optimizers' move sequences — and
    therefore their seeded RNG draws — byte-identical.
    """
    topo = system.arch.topology
    moves: List[Move] = []
    for msg in system.app.all_messages():
        src, dst = system.clusters_of_message(msg.name)
        if src == dst:
            continue
        candidates = route_candidates(system, msg.name, config.bus, max_hops)
        if len(candidates) < 2:
            continue
        default = topo.default_route(src, dst)
        current = tuple(config.routes.get(msg.name, default))
        for route in candidates:
            if route == current:
                continue
            moves.append(
                RerouteMessage(
                    message=msg.name,
                    route=route,
                    is_default=route == default,
                )
            )
    return moves
