"""OptimizeResources (OR) — the seeded hill climber of Fig. 7.

Step 1 runs OptimizeSchedule to obtain a schedulable system and a pool of
seed solutions (best-``δΓ`` and best-``s_total`` configurations).  Step 2
starts a hill climb from every seed: in each iteration the neighborhood is
generated (:func:`repro.optim.moves.generate_neighbors`), every move is
scored, and the move with the smallest ``s_total`` **that keeps the system
schedulable** is performed; the climb stops when no move improves
``s_total`` or an iteration budget is exhausted.  The best configuration
across all climbs is returned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import UnschedulableError
from ..system import System
from .common import Evaluation, evaluate
from .moves import generate_neighbors
from .optimize_schedule import OSResult, optimize_schedule

__all__ = ["ORResult", "optimize_resources"]


@dataclass
class ORResult:
    """Outcome of OptimizeResources."""

    best: Evaluation
    schedule_result: OSResult
    evaluations: int = 0
    climbs: int = 0

    @property
    def schedulable(self) -> bool:
        """Whether the returned configuration meets all deadlines."""
        return self.best.schedulable

    @property
    def total_buffers(self) -> float:
        """``s_total`` of the best configuration."""
        return self.best.total_buffers


def optimize_resources(
    system: System,
    os_result: Optional[OSResult] = None,
    max_iterations: int = 25,
    neighborhood: int = 24,
    seed: int = 0,
    require_schedulable: bool = False,
    max_climbs: Optional[int] = None,
    session=None,
) -> ORResult:
    """Run the two-step OR strategy; see module docstring.

    ``os_result`` lets callers reuse an existing OptimizeSchedule run.
    With ``require_schedulable`` an :class:`UnschedulableError` is raised
    when step 1 found no schedulable configuration (the paper's "modify
    mapping and/or architecture" escape hatch, which is outside the scope
    of this algorithm); otherwise the best-effort configuration is
    returned.  ``max_climbs`` bounds how many seed solutions are climbed
    from (best-buffer seeds first); ``None`` climbs them all.  ``session``
    (a :class:`repro.api.session.Session`) memoizes analysis runs by
    configuration hash — hill climbs that revisit a neighbor (or step
    back onto a seed) score it once.  When no session is given a private
    one is created so the climbs still run on the session's compiled
    analysis kernel (incremental recompiles per move) with memoization.
    """
    if session is None:
        from ..api.session import Session

        session = Session(system)
    rng = random.Random(seed)
    if os_result is None:
        os_result = optimize_schedule(system, session=session)
    evaluations = os_result.evaluations
    if not os_result.schedulable:
        if require_schedulable:
            raise UnschedulableError(
                "OptimizeSchedule found no schedulable configuration; "
                "modify the mapping or the architecture"
            )
        return ORResult(
            best=os_result.best,
            schedule_result=os_result,
            evaluations=evaluations,
        )

    seeds = [e for e in os_result.seeds if e.schedulable]
    if not seeds:
        seeds = [os_result.best]
    if max_climbs is not None:
        # Keep the best-buffer seeds but always retain the best-degree
        # solution: highly schedulable seeds survive more moves before
        # degrading (the paper's observation about good starting points).
        picked = sorted(seeds, key=lambda e: e.total_buffers)[:max_climbs]
        if os_result.best.schedulable and os_result.best not in picked:
            picked = picked[: max(1, max_climbs - 1)] + [os_result.best]
        seeds = picked
    best = min(seeds, key=lambda e: e.total_buffers)
    climbs = 0
    for seed_eval in seeds:
        current = seed_eval
        climbs += 1
        for _ in range(max_iterations):
            moves = generate_neighbors(
                system,
                current.config,
                evaluation=current,
                rng=rng,
                limit=neighborhood,
            )
            best_move_eval: Optional[Evaluation] = None
            for move in moves:
                candidate = evaluate(
                    system, move.apply(current.config), session=session
                )
                evaluations += 1
                if not candidate.schedulable:
                    continue
                if (
                    best_move_eval is None
                    or candidate.total_buffers < best_move_eval.total_buffers
                ):
                    best_move_eval = candidate
            if (
                best_move_eval is None
                or best_move_eval.total_buffers >= current.total_buffers
            ):
                break
            current = best_move_eval
        if current.total_buffers < best.total_buffers:
            best = current
    return ORResult(
        best=best,
        schedule_result=os_result,
        evaluations=evaluations,
        climbs=climbs,
    )
