"""Design-space moves for the hill climber and the annealers (section 5.1).

The paper's neighborhood consists of four move families:

* moving a TT process or message inside its [ASAP, ALAP] interval —
  realized as an extra start delay recorded in ``config.tt_delays`` and
  honoured by the static scheduler;
* swapping the priorities of two ETC processes (same node) or of two CAN
  messages;
* increasing or decreasing the size of a TDMA slot;
* swapping two slots of the TDMA round.

A :class:`Move` is a small immutable description; ``apply`` produces a new
:class:`SystemConfiguration` (the original is never mutated, so rejected
moves cost nothing).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..model.architecture import MessageRoute
from ..model.configuration import SystemConfiguration
from ..model.validation import minimum_slot_capacity
from ..schedule.asap_alap import slack_of_message, slack_of_process
from ..system import System
from .common import Evaluation
from .slots import build_bus, recommended_capacities

__all__ = [
    "Move",
    "SwapSlots",
    "ResizeSlot",
    "SwapProcessPriorities",
    "SwapMessagePriorities",
    "DelayActivity",
    "generate_neighbors",
    "random_move",
]


class Move:
    """Base class: a reversible design transformation on ``ψ``."""

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SwapSlots(Move):
    """Swap the TDMA positions of two slots (keeps per-node sizes)."""

    first: int
    second: int

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        new = config.copy()
        slots = list(new.bus.slots)
        slots[self.first], slots[self.second] = (
            slots[self.second],
            slots[self.first],
        )
        new.bus = type(new.bus)(slots)
        return new

    def describe(self) -> str:
        return f"swap TDMA slots #{self.first} and #{self.second}"


@dataclass(frozen=True)
class ResizeSlot(Move):
    """Set the byte capacity (and derived duration) of one node's slot."""

    node: str
    capacity: int

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        new = config.copy()
        slots = []
        for slot in new.bus.slots:
            if slot.node == self.node:
                duration = self._duration
                slots.append(
                    type(slot)(
                        node=slot.node,
                        capacity=self.capacity,
                        duration=duration,
                    )
                )
            else:
                slots.append(slot)
        new.bus = type(new.bus)(slots)
        return new

    # Duration is attached at generation time (it needs the TTPBusSpec).
    _duration: float = 0.0

    def describe(self) -> str:
        return f"resize slot of {self.node} to {self.capacity} bytes"


@dataclass(frozen=True)
class SwapProcessPriorities(Move):
    """Swap the priorities of two ETC processes on the same node."""

    first: str
    second: str

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        new = config.copy()
        new.priorities.swap_processes(self.first, self.second)
        return new

    def describe(self) -> str:
        return f"swap priorities of processes {self.first}/{self.second}"


@dataclass(frozen=True)
class SwapMessagePriorities(Move):
    """Swap the CAN priorities of two messages."""

    first: str
    second: str

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        new = config.copy()
        new.priorities.swap_messages(self.first, self.second)
        return new

    def describe(self) -> str:
        return f"swap priorities of messages {self.first}/{self.second}"


@dataclass(frozen=True)
class DelayActivity(Move):
    """Set the extra schedule delay of a TT process or message.

    ``delay`` is absolute (not incremental); 0 removes the adjustment.
    """

    activity: str
    delay: float

    def apply(self, config: SystemConfiguration) -> SystemConfiguration:
        new = config.copy()
        if self.delay <= 0.0:
            new.tt_delays.pop(self.activity, None)
        else:
            new.tt_delays[self.activity] = self.delay
        return new

    def describe(self) -> str:
        return f"delay {self.activity} by {self.delay:g}"


def _resize_move(system: System, node: str, capacity: int) -> ResizeSlot:
    move = ResizeSlot(node=node, capacity=capacity)
    object.__setattr__(move, "_duration", system.ttp_spec.slot_duration(capacity))
    return move


def _slot_moves(system: System, config: SystemConfiguration) -> List[Move]:
    moves: List[Move] = []
    slot_count = len(config.bus.slots)
    for i in range(slot_count):
        for j in range(i + 1, slot_count):
            moves.append(SwapSlots(i, j))
    for slot in config.bus.slots:
        floor = minimum_slot_capacity(system.app, system.arch, slot.node)
        step = max(4, floor // 2)
        candidates = {slot.capacity - step, floor, slot.capacity + step}
        candidates.update(recommended_capacities(system, slot.node))
        for capacity in sorted(candidates):
            if capacity >= floor and capacity != slot.capacity:
                moves.append(_resize_move(system, slot.node, capacity))
    return moves


def _priority_moves(system: System, config: SystemConfiguration) -> List[Move]:
    moves: List[Move] = []
    for node in system.et_nodes_with_processes():
        procs = sorted(
            system.et_processes_on(node),
            key=lambda p: config.priorities.process_priority(p),
        )
        for a, b in zip(procs, procs[1:]):
            moves.append(SwapProcessPriorities(a, b))
    msgs = sorted(
        system.can_messages(),
        key=lambda m: config.priorities.message_priority(m),
    )
    for a, b in zip(msgs, msgs[1:]):
        moves.append(SwapMessagePriorities(a, b))
    return moves


def _delay_moves(
    system: System, config: SystemConfiguration, evaluation: Optional[Evaluation]
) -> List[Move]:
    """Delays for TT activities that feed the gateway queues."""
    moves: List[Move] = []
    rho = None
    offsets = config.offsets
    if evaluation is not None and evaluation.result is not None:
        rho = evaluation.result.rho
        offsets = evaluation.result.offsets
    for msg in system.app.all_messages():
        if system.route(msg.name) is not MessageRoute.TT_TO_ET:
            continue
        current = config.tt_delays.get(msg.name, 0.0)
        if current > 0.0:
            moves.append(DelayActivity(msg.name, 0.0))
        if offsets is None:
            continue
        arrival = offsets.message_offsets.get(msg.name, 0.0)
        slack = slack_of_message(system, msg.name, arrival, rho)
        for fraction in (0.25, 0.5):
            delta = slack * fraction
            if delta > 1e-9:
                moves.append(DelayActivity(msg.name, current + delta))
    return moves


def _targeted_spread_moves(
    system: System, config: SystemConfiguration, evaluation: Optional[Evaluation]
) -> List[Move]:
    """Delay moves aimed at the actual buffer-bound contributors.

    The ``s_Out^CAN`` bound is dominated by higher-priority TT->ET
    messages whose windows overlap the critical message's queueing delay.
    For each such overlapping pair this proposes the *exact* delay that
    pushes the interferer's phase past the window, making the two
    messages' queue residencies disjoint — the "move a message inside its
    [ASAP, ALAP] interval" move, aimed where it pays.
    """
    if evaluation is None or evaluation.result is None:
        return []
    rho = evaluation.result.rho
    app = system.app
    members = system.tt_to_et_messages()
    moves: List[Move] = []
    for m in members:
        timing = rho.can.get(m)
        if timing is None or not timing.converged:
            continue
        for j in members:
            if j == m:
                continue
            if (
                config.priorities.message_priority(j)
                > config.priorities.message_priority(m)
            ):
                continue
            other = rho.can.get(j)
            if other is None or not other.converged:
                continue
            period = app.period_of_message(j)
            if period != app.period_of_message(m):
                continue  # not phase-locked; a delay cannot separate them
            rel = (other.offset - timing.offset) % period
            overlap = timing.queuing + other.jitter - rel
            if overlap <= 0:
                continue  # already disjoint
            needed = overlap + 0.5
            # Option 1: push the interferer j later, past m's window.
            slack_j = slack_of_message(system, j, other.offset, rho)
            if needed <= slack_j:
                current = config.tt_delays.get(j, 0.0)
                moves.append(DelayActivity(j, current + needed))
            # Option 2: push m itself later, past j's residency window.
            escape = (
                other.jitter + other.queuing + timing.duration
                - ((timing.offset - other.offset) % period)
                + 0.5
            )
            if escape > 0:
                slack_m = slack_of_message(system, m, timing.offset, rho)
                if escape <= slack_m:
                    current = config.tt_delays.get(m, 0.0)
                    moves.append(DelayActivity(m, current + escape))
    return moves


def generate_neighbors(
    system: System,
    config: SystemConfiguration,
    evaluation: Optional[Evaluation] = None,
    rng: Optional[random.Random] = None,
    limit: int = 24,
) -> List[Move]:
    """The GenerateNeighbors of Fig. 7: a bounded, mixed move set.

    Targeted buffer-spread moves (computed from the current analysis) are
    always included; the generic move families fill the remaining budget
    with a reproducible random sample (the paper bounds the neighborhood
    the same way to keep iterations cheap).
    """
    from .routing import route_moves

    targeted = _targeted_spread_moves(system, config, evaluation)
    if len(targeted) > limit:
        rng = rng or random.Random(0)
        targeted = rng.sample(targeted, limit)
    generic = (
        _slot_moves(system, config)
        + _priority_moves(system, config)
        + _delay_moves(system, config, evaluation)
        + route_moves(system, config)
    )
    budget = max(0, limit - len(targeted))
    if len(generic) > budget:
        rng = rng or random.Random(0)
        generic = rng.sample(generic, budget)
    return targeted + generic


def random_move(
    system: System,
    config: SystemConfiguration,
    rng: random.Random,
    evaluation: Optional[Evaluation] = None,
) -> Move:
    """One uniformly random move (the annealers' neighbor function).

    Routing moves join the pool only on topologies with actual routing
    freedom (:func:`repro.optim.routing.route_moves` is empty
    otherwise), so canonical annealing runs draw the same sequence as
    before the generalization.
    """
    from .routing import route_moves

    moves = (
        _slot_moves(system, config)
        + _priority_moves(system, config)
        + _delay_moves(system, config, evaluation)
        + route_moves(system, config)
    )
    return rng.choice(moves)
