"""Simulated-annealing baselines SAS and SAR (section 6).

The paper tunes two annealers over the same move set as the hill climber
to approximate the optimum:

* **SAS** (SA Schedule) minimizes the degree of schedulability ``δΓ``;
* **SAR** (SA Resources) minimizes the total buffer need ``s_total``
  (unschedulable states are admitted during the walk but heavily
  penalized, so the chain returns to the feasible region).

"Very long and expensive runs" in the paper took up to three hours; the
iteration budget here is a parameter so benchmarks can trade fidelity for
runtime (the comparisons of Fig. 9 use the *relative* quality of OS/OR
versus these near-optimal references).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..model.configuration import SystemConfiguration
from ..system import System
from .common import Evaluation, evaluate
from .moves import random_move
from .straightforward import straightforward_configuration

__all__ = ["SAResult", "simulated_annealing", "sa_schedule", "sa_resources"]

#: Penalty weight pushing SAR away from unschedulable configurations.
_UNSCHEDULABLE_WEIGHT = 1e9


@dataclass
class SAResult:
    """Outcome of one annealing run."""

    best: Evaluation
    evaluations: int
    accepted: int

    @property
    def schedulable(self) -> bool:
        """Whether the best state meets all deadlines."""
        return self.best.schedulable


def _degree_cost(evaluation: Evaluation) -> float:
    return evaluation.degree


def _buffer_cost(evaluation: Evaluation) -> float:
    cost = evaluation.total_buffers
    if not evaluation.schedulable:
        cost += _UNSCHEDULABLE_WEIGHT + max(0.0, evaluation.degree)
    return cost


def simulated_annealing(
    system: System,
    initial: SystemConfiguration,
    cost: Callable[[Evaluation], float],
    iterations: int = 400,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.98,
    seed: int = 0,
    session=None,
) -> SAResult:
    """Generic annealer over the section-5.1 move set.

    Classic Metropolis acceptance with geometric cooling.  The initial
    temperature defaults to a scale estimated from the initial cost so the
    early phase accepts most moves.  ``session`` (default: a private
    :class:`repro.api.session.Session`) carries the compiled analysis
    kernel, so each move's evaluation recompiles only the interference
    rows the move touched; revisited states hit the memo cache.
    """
    if session is None:
        from ..api.session import Session

        session = Session(system)
    rng = random.Random(seed)
    current = evaluate(system, initial, session=session)
    evaluations = 1
    best = current
    current_cost = cost(current)
    best_cost = current_cost
    temperature = initial_temperature
    if temperature is None:
        temperature = max(1.0, abs(current_cost) * 0.1)
    accepted = 0
    for _ in range(iterations):
        move = random_move(system, current.config, rng, evaluation=current)
        candidate = evaluate(
            system, move.apply(current.config), session=session
        )
        evaluations += 1
        candidate_cost = cost(candidate)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(
            -delta / max(temperature, 1e-12)
        ):
            current = candidate
            current_cost = candidate_cost
            accepted += 1
            if candidate_cost < best_cost:
                best = candidate
                best_cost = candidate_cost
        temperature *= cooling
    return SAResult(best=best, evaluations=evaluations, accepted=accepted)


def sa_schedule(
    system: System,
    iterations: int = 400,
    seed: int = 0,
    initial: Optional[SystemConfiguration] = None,
    session=None,
) -> SAResult:
    """SAS: anneal the degree of schedulability ``δΓ``."""
    start = initial if initial is not None else straightforward_configuration(system)
    return simulated_annealing(
        system, start, _degree_cost, iterations=iterations, seed=seed,
        session=session,
    )


def sa_resources(
    system: System,
    iterations: int = 400,
    seed: int = 0,
    initial: Optional[SystemConfiguration] = None,
    session=None,
) -> SAResult:
    """SAR: anneal the total buffer need ``s_total``."""
    start = initial if initial is not None else straightforward_configuration(system)
    return simulated_annealing(
        system, start, _buffer_cost, iterations=iterations, seed=seed,
        session=session,
    )
