"""The process-safe metrics registry: counters, gauges, histograms.

Recording is **lock-free per process**: every series lives under a
``(name, labels)`` key in a plain dict and updates are single bytecode
read-modify-write operations on floats/ints, which the GIL makes
atomic — no locks on the hot path, and no cross-thread tearing.  The
cross-*process* story is snapshot/merge: a forked ``LocalFleet``
worker or a remote ``repro worker`` calls :meth:`MetricsRegistry.
drain` after each unit (snapshot + reset, so each increment ships
exactly once), sends the snapshot back with the unit result, and the
service folds it with :meth:`MetricsRegistry.merge` into the
service-wide view that ``GET /metrics`` exports.

Naming follows Prometheus convention: ``repro_<subsystem>_<what>``
with ``_total`` for counters and ``_seconds`` for duration
histograms; labels are short identity dimensions (``backend``,
``kind``, ``worker``), never unbounded values.

The module also defines the **unified stats snapshot** schema
(:data:`STATS_FORMAT`, :func:`stats_snapshot`) that ``repro ...
--stats --format json`` emits across analyze/simulate/conform/explore
— one shape (``counters`` / ``timings`` / ``derived``) replacing the
three historical ad-hoc ones, which remain in the payloads as
deprecation-tolerant aliases.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import state

__all__ = [
    "HIST_BOUNDS", "METRICS_FORMAT", "STATS_FORMAT", "MetricsRegistry",
    "registry", "inc", "observe", "set_gauge", "stats_snapshot",
]

#: Format tag stamped on serialized registry snapshots.
METRICS_FORMAT = "repro-metrics-v1"

#: Format tag of the unified ``--stats`` snapshot schema.
STATS_FORMAT = "repro-stats-v1"

#: Shared histogram bucket upper bounds (seconds) — one fixed ladder
#: for every duration histogram so snapshots merge bucket-for-bucket.
HIST_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Iterable) -> LabelPairs:
    return tuple((str(k), str(v)) for k, v in labels)


class MetricsRegistry:
    """Labeled counters/gauges/histograms with snapshot/merge."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelPairs], float] = {}
        self._gauges: Dict[Tuple[str, LabelPairs], float] = {}
        #: name,labels -> [bucket counts (len(HIST_BOUNDS)+1), sum, count]
        self._hists: Dict[Tuple[str, LabelPairs], List[Any]] = {}

    # -- recording (lock-free; GIL-atomic updates) ---------------------------

    def inc(self, name: str, labels: Iterable = (), value: float = 1.0) -> None:
        key = (name, _labels_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, labels: Iterable = ()) -> None:
        self._gauges[(name, _labels_key(labels))] = float(value)

    def observe(self, name: str, value: float, labels: Iterable = ()) -> None:
        key = (name, _labels_key(labels))
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = [
                [0] * (len(HIST_BOUNDS) + 1), 0.0, 0,
            ]
        hist[0][bisect_left(HIST_BOUNDS, value)] += 1
        hist[1] += value
        hist[2] += 1

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable copy of every series."""
        return {
            "format": METRICS_FORMAT,
            "counters": [
                [name, [list(p) for p in labels], value]
                for (name, labels), value in self._counters.items()
            ],
            "gauges": [
                [name, [list(p) for p in labels], value]
                for (name, labels), value in self._gauges.items()
            ],
            "hists": [
                [
                    name, [list(p) for p in labels],
                    {
                        "buckets": list(hist[0]),
                        "sum": hist[1],
                        "count": hist[2],
                    },
                ]
                for (name, labels), hist in self._hists.items()
            ],
        }

    def drain(self) -> Dict[str, Any]:
        """Snapshot then reset — each increment ships exactly once."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a snapshot in: counters add, gauges overwrite,
        histograms add bucket-for-bucket.  Malformed snapshots are
        ignored series by series — a bad worker blob must never take
        the collector down."""
        if not isinstance(snapshot, dict):
            return
        for entry in snapshot.get("counters") or []:
            try:
                name, labels, value = entry
                key = (name, _labels_key(labels))
                self._counters[key] = (
                    self._counters.get(key, 0.0) + float(value)
                )
            except (TypeError, ValueError):
                continue
        for entry in snapshot.get("gauges") or []:
            try:
                name, labels, value = entry
                self._gauges[(name, _labels_key(labels))] = float(value)
            except (TypeError, ValueError):
                continue
        for entry in snapshot.get("hists") or []:
            try:
                name, labels, data = entry
                buckets = [int(b) for b in data["buckets"]]
                if len(buckets) != len(HIST_BOUNDS) + 1:
                    continue
                key = (name, _labels_key(labels))
                hist = self._hists.get(key)
                if hist is None:
                    hist = self._hists[key] = [
                        [0] * (len(HIST_BOUNDS) + 1), 0.0, 0,
                    ]
                for i, b in enumerate(buckets):
                    hist[0][i] += b
                hist[1] += float(data["sum"])
                hist[2] += int(data["count"])
            except (KeyError, TypeError, ValueError):
                continue

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()

    # -- plain views ---------------------------------------------------------

    def counter_value(self, name: str, labels: Iterable = ()) -> float:
        return self._counters.get((name, _labels_key(labels)), 0.0)

    def counters_by_name(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(
            value for (n, _), value in self._counters.items() if n == name
        )


#: The process-wide registry every instrumentation site records into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


# -- guarded module-level shorthands (no-ops when obs is off) ----------------


def inc(name: str, labels: Iterable = (), value: float = 1.0) -> None:
    if state.enabled:
        _REGISTRY.inc(name, labels, value)


def observe(name: str, value: float, labels: Iterable = ()) -> None:
    if state.enabled:
        _REGISTRY.observe(name, value, labels)


def set_gauge(name: str, value: float, labels: Iterable = ()) -> None:
    if state.enabled:
        _REGISTRY.set_gauge(name, value, labels)


# -- the unified --stats snapshot schema -------------------------------------


def stats_snapshot(
    kind: str,
    counters: Optional[Dict[str, Any]] = None,
    timings: Optional[Dict[str, Any]] = None,
    derived: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One stats shape for every ``--stats --format json`` surface.

    ``kind`` names the producer (``session`` / ``campaign`` / ``sweep``
    / ``serve``); ``counters`` are monotonic tallies, ``timings`` are
    seconds, ``derived`` are ratios/rates.  Old ad-hoc keys
    (``session_stats``, ``profile``) stay in the payloads next to this
    for one deprecation cycle.
    """
    return {
        "format": STATS_FORMAT,
        "kind": kind,
        "counters": dict(counters or {}),
        "timings": dict(timings or {}),
        "derived": dict(derived or {}),
    }
