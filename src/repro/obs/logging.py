"""Structured logging for the serve daemon and workers.

Replaces the historical ``print(..., flush=True)`` scattering with one
logger shape: ``HH:MM:SS LEVEL component [id=... id=...]: message``.
The *message text is unchanged* relative to the old prints — consumers
that parse stdout (the chaos tests, the CI daemon smoke scripts) key
on substrings like ``"serving on "`` and keep working; the structured
ids ride in the bracketed tag *before* the message so suffix parses
(``line.split("serving on ")[1]``) still yield clean values.

Level filtering comes from ``REPRO_LOG`` (``debug``/``info``/``warn``/
``error``/``off``; default ``info``) and is independent of the
``REPRO_OBS`` metrics/tracing switch — a daemon always logs.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional

from . import state

__all__ = ["ObsLogger", "get_logger", "set_level"]

_LEVELS = {
    "debug": 10, "info": 20, "warn": 30, "warning": 30,
    "error": 40, "off": 100,
}


def set_level(level: str) -> None:
    """Override the ``REPRO_LOG`` threshold (tests, programmatic use)."""
    state.log_level = level


def _threshold() -> int:
    return _LEVELS.get(str(state.log_level).lower(), 20)


class ObsLogger:
    """One named component's logger; emits to stdout, flushed."""

    __slots__ = ("component", "stream")

    def __init__(self, component: str, stream=None) -> None:
        self.component = component
        self.stream = stream

    def _emit(
        self, levelno: int, levelname: str, message: str,
        ids: Dict[str, Any],
    ) -> None:
        if levelno < _threshold():
            return
        tag = " ".join(
            f"{key}={value}" for key, value in ids.items()
            if value is not None
        )
        prefix = f"{time.strftime('%H:%M:%S')} {levelname:<5} {self.component}"
        if tag:
            prefix += f" [{tag}]"
        stream = self.stream if self.stream is not None else sys.stdout
        try:
            print(f"{prefix}: {message}", file=stream, flush=True)
        except (OSError, ValueError):
            pass  # a closed/broken stream must not kill the daemon

    def debug(self, message: str, **ids: Any) -> None:
        self._emit(10, "DEBUG", message, ids)

    def info(self, message: str, **ids: Any) -> None:
        self._emit(20, "INFO", message, ids)

    def warn(self, message: str, **ids: Any) -> None:
        self._emit(30, "WARN", message, ids)

    warning = warn

    def error(self, message: str, **ids: Any) -> None:
        self._emit(40, "ERROR", message, ids)


_LOGGERS: Dict[str, ObsLogger] = {}


def get_logger(component: str) -> ObsLogger:
    logger = _LOGGERS.get(component)
    if logger is None:
        logger = _LOGGERS[component] = ObsLogger(component)
    return logger
