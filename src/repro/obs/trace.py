"""Lightweight distributed tracing: spans with explicit parent ids.

A span is a named interval with a ``trace`` id (shared by the whole
request tree), its own ``span`` id, and a ``parent`` span id.  The
taxonomy threads one request end to end::

    client.request -> serve.job -> serve.unit -> serve.attempt
        -> worker.compute -> session.evaluate -> kernel.solve
                                               / kernel.replay
                                               / store.get / store.put

Retried and hedged dispatches appear as **sibling** ``serve.attempt``
spans under the same ``serve.unit`` parent — latency attribution for
stragglers falls out of the tree shape.

Context propagation is explicit and JSON-shaped: ``{"trace": ...,
"span": ...}`` dicts ride in HTTP request bodies, worker poll
responses, local-fleet task tuples and the unit journal (so a
crash-recovered unit keeps its trace).  Inside a process a
thread-local span stack supplies implicit parents, so instrumented
library code (session, kernels, store) nests under whatever span the
caller opened.

Finished spans accumulate in a bounded per-process buffer;
:func:`drain_spans` hands them off exactly once (workers ship them
with unit results, the serve daemon folds them into its trace file,
CLI processes flush them via ``REPRO_OBS_TRACE``).  With obs disabled
every entry point is a no-op costing one branch.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Union

from . import state

__all__ = [
    "Span", "span", "start_span", "end_span", "current_context",
    "context_of", "drain_spans", "reset_trace_state",
]

#: Bounded buffer of finished span dicts awaiting drain.
_FINISHED: "deque" = deque(maxlen=100_000)

_local = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _new_id() -> str:
    return os.urandom(8).hex()


class Span:
    """One traced interval; cheap on purpose (``__slots__``, floats)."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start_wall", "_start_mono", "dur_s", "status", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_wall = time.time()
        self._start_mono = time.monotonic()
        self.dur_s: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, Any] = dict(attrs or {})

    def end(self, status: Optional[str] = None, **attrs: Any) -> None:
        if self.dur_s is not None:
            return  # idempotent: first end wins
        self.dur_s = time.monotonic() - self._start_mono
        if status is not None:
            self.status = status
        if attrs:
            self.attrs.update(attrs)
        _FINISHED.append(self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self.start_wall,
            "dur_s": self.dur_s,
            "status": self.status,
            "pid": os.getpid(),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


def _resolve_parent(
    parent: Union[None, "Span", Dict[str, Any]],
) -> (Optional[str], Optional[str]):
    """(trace_id, parent_span_id) from an explicit parent or the
    thread-local stack."""
    if parent is None:
        stack = _stack()
        if stack:
            top = stack[-1]
            return top.trace_id, top.span_id
        return None, None
    if isinstance(parent, Span):
        return parent.trace_id, parent.span_id
    if isinstance(parent, dict):
        trace_id = parent.get("trace")
        span_id = parent.get("span")
        if isinstance(trace_id, str):
            return trace_id, span_id if isinstance(span_id, str) else None
    return None, None


def start_span(
    name: str,
    parent: Union[None, "Span", Dict[str, Any]] = None,
    **attrs: Any,
) -> Optional[Span]:
    """Open a span with an explicit lifetime (``.end()`` / :func:`end_span`).

    For async lifecycles — jobs, units, attempts — whose begin and end
    happen on different threads.  Does **not** touch the thread-local
    stack.  Returns ``None`` when obs is disabled; every consumer of
    the return value must tolerate that.
    """
    if not state.enabled:
        return None
    trace_id, parent_id = _resolve_parent(parent)
    return Span(name, trace_id or _new_id(), parent_id, attrs)


def end_span(
    span_obj: Optional[Span], status: Optional[str] = None, **attrs: Any
) -> None:
    if span_obj is not None:
        span_obj.end(status, **attrs)


def context_of(span_obj: Optional[Span]) -> Optional[Dict[str, str]]:
    """The propagation dict of a span (``None`` stays ``None``)."""
    if span_obj is None:
        return None
    return {"trace": span_obj.trace_id, "span": span_obj.span_id}


def current_context() -> Optional[Dict[str, str]]:
    """Propagation dict of the innermost open span on this thread."""
    if not state.enabled:
        return None
    stack = _stack()
    if not stack:
        return None
    top = stack[-1]
    return {"trace": top.trace_id, "span": top.span_id}


class _SpanScope:
    """Context manager pushing a span onto the thread-local stack."""

    __slots__ = ("_name", "_parent", "_attrs", "_span")

    def __init__(self, name, parent, attrs) -> None:
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        trace_id, parent_id = _resolve_parent(self._parent)
        self._span = Span(
            self._name, trace_id or _new_id(), parent_id, self._attrs
        )
        _stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = _stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        elif self._span in stack:  # defensive: unbalanced nesting
            stack.remove(self._span)
        assert self._span is not None
        self._span.end("error" if exc_type is not None else None)
        return False


class _NoopScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopScope()


def span(
    name: str,
    parent: Union[None, Span, Dict[str, Any]] = None,
    **attrs: Any,
):
    """``with span("kernel.solve"): ...`` — nested under the current
    span (or an explicit ``parent`` context).  A shared no-op scope
    when obs is disabled."""
    if not state.enabled:
        return _NOOP
    return _SpanScope(name, parent, attrs)


def drain_spans() -> List[Dict[str, Any]]:
    """Hand off (and forget) every finished span of this process."""
    out: List[Dict[str, Any]] = []
    while True:
        try:
            out.append(_FINISHED.popleft())
        except IndexError:
            return out


def record_spans(spans: Optional[List[Dict[str, Any]]]) -> None:
    """Re-inject span dicts into the buffer (collector-side fold)."""
    for entry in spans or []:
        if isinstance(entry, dict):
            _FINISHED.append(entry)


def reset_trace_state() -> None:
    """Clear buffer and stack — forked workers call this at startup so
    state inherited from the parent never ships twice."""
    _FINISHED.clear()
    _local.stack = []


def flush_spans_to(path: str) -> int:
    """Append this process's finished spans to a JSONL file.

    The client-side export half of a distributed trace (see
    ``REPRO_OBS_TRACE``).  Returns the number of spans written; I/O
    errors are swallowed — tracing must never fail the work itself.
    """
    spans = drain_spans()
    if not spans:
        return 0
    import json

    try:
        with open(path, "a", encoding="utf-8") as handle:
            for entry in spans:
                handle.write(json.dumps(entry) + "\n")
    except OSError:
        return 0
    return len(spans)
