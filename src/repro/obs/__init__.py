"""Unified observability: metrics, distributed tracing, structured
logging, and exporters.

Everything is **off by default** and zero-cost when off: every
instrumentation site reduces to one attribute load and branch on
:data:`repro.obs.state.enabled`, spans become a shared no-op context
manager, and no report, store key, journal record or trace digest
changes shape.  Enable with ``REPRO_OBS=1`` in the environment or
:func:`configure` programmatically.

The submodules:

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  lock-free per-process recording and snapshot/merge semantics (the
  cross-process collection story for forked and remote workers).
* :mod:`repro.obs.trace` — spans with explicit parent ids, propagated
  through the serve protocol and the unit journal.
* :mod:`repro.obs.logging` — the structured stdout logger
  (``REPRO_LOG`` level filtering).
* :mod:`repro.obs.export` — Prometheus text, Chrome trace events,
  JSONL trace files, the span-tree renderer.
"""

from __future__ import annotations

from typing import Optional

from . import state
from .logging import get_logger, set_level
from .metrics import (
    STATS_FORMAT,
    MetricsRegistry,
    registry,
    stats_snapshot,
)
from .trace import (
    Span,
    context_of,
    current_context,
    drain_spans,
    end_span,
    span,
    start_span,
)

__all__ = [
    "STATS_FORMAT", "MetricsRegistry", "Span", "configure",
    "context_of", "current_context", "drain_spans", "end_span",
    "get_logger", "obs_enabled", "registry", "reset_process",
    "set_level", "snapshot_blob", "span", "start_span",
    "stats_snapshot", "state",
]


def obs_enabled() -> bool:
    """Whether metrics recording and span creation are on."""
    return state.enabled


def configure(
    enabled: Optional[bool] = None,
    log_level: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> None:
    """Programmatic override of the environment switches."""
    if enabled is not None:
        state.enabled = bool(enabled)
    if log_level is not None:
        state.log_level = str(log_level)
    if trace_path is not None:
        state.trace_path = str(trace_path)


def reset_process() -> None:
    """Clear all per-process obs state (registry, span buffer, stack).

    Forked workers call this first thing so counters and spans
    inherited from the parent's address space never ship twice.
    """
    registry().reset()
    from .trace import reset_trace_state

    reset_trace_state()


def snapshot_blob() -> Optional[dict]:
    """The worker-to-collector shipping unit: drained metrics + spans.

    ``None`` when obs is off (the wire shape then carries no obs field
    at all — byte-identical to pre-obs traffic).  Draining means each
    increment and span ships exactly once per unit of work.
    """
    if not state.enabled:
        return None
    return {"metrics": registry().drain(), "spans": drain_spans()}
