"""Exporters and renderers: Prometheus text, Chrome trace events,
JSONL trace files, and the ``repro trace`` span-tree view.

* :func:`prometheus_text` serializes a registry snapshot (plus ad-hoc
  counter/gauge dicts from the service) in the Prometheus text
  exposition format — the body of ``GET /metrics``.
* :func:`chrome_trace` converts span dicts to the Chrome trace-event
  JSON (load in ``chrome://tracing`` / Perfetto).
* :func:`read_spans_jsonl` / :func:`write_spans_jsonl` are the flat
  trace-file interchange (one span dict per line; torn or corrupt
  lines are skipped, same tolerance as every other JSONL file here).
* :func:`critical_span_ids` + :func:`render_span_tree` build the tree
  ``repro trace <job>`` prints, marking the critical path — from each
  root, the chain of children that actually bounded the end time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .metrics import HIST_BOUNDS

__all__ = [
    "prometheus_text", "chrome_trace", "read_spans_jsonl",
    "write_spans_jsonl", "critical_span_ids", "render_span_tree",
]


# -- Prometheus text exposition ----------------------------------------------


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _series(name: str, labels: Iterable, value: Any) -> str:
    pairs = list(labels)
    if not pairs:
        return f"{name} {value}"
    body = ",".join(
        f'{key}="{_escape_label(val)}"' for key, val in pairs
    )
    return f"{name}{{{body}}} {value}"


def _format_value(value: float) -> Any:
    return int(value) if float(value).is_integer() else value


def prometheus_text(
    snapshot: Optional[Dict[str, Any]] = None,
    extra_counters: Optional[Dict[str, float]] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``extra_counters`` / ``extra_gauges`` are flat ``name -> value``
    dicts for series that live outside the registry (the service's
    own counters, queue depths) so ``/metrics`` is useful even with
    obs disabled.
    """
    lines: List[str] = []
    by_name: Dict[str, List[Tuple[List, Any]]] = {}
    snapshot = snapshot or {}
    for entry in snapshot.get("counters") or []:
        name, labels, value = entry
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        lines.append(f"# TYPE {name} counter")
        for labels, value in by_name[name]:
            lines.append(_series(name, labels, _format_value(value)))
    for name in sorted(extra_counters or {}):
        lines.append(f"# TYPE {name} counter")
        lines.append(_series(name, (), _format_value(
            (extra_counters or {})[name]
        )))
    gauge_by_name: Dict[str, List[Tuple[List, Any]]] = {}
    for entry in snapshot.get("gauges") or []:
        name, labels, value = entry
        gauge_by_name.setdefault(name, []).append((labels, value))
    for name in sorted(gauge_by_name):
        lines.append(f"# TYPE {name} gauge")
        for labels, value in gauge_by_name[name]:
            lines.append(_series(name, labels, value))
    for name in sorted(extra_gauges or {}):
        lines.append(f"# TYPE {name} gauge")
        lines.append(_series(name, (), (extra_gauges or {})[name]))
    hist_by_name: Dict[str, List[Tuple[List, Dict]]] = {}
    for entry in snapshot.get("hists") or []:
        name, labels, data = entry
        hist_by_name.setdefault(name, []).append((labels, data))
    for name in sorted(hist_by_name):
        lines.append(f"# TYPE {name} histogram")
        for labels, data in hist_by_name[name]:
            cumulative = 0
            for bound, count in zip(HIST_BOUNDS, data["buckets"]):
                cumulative += count
                lines.append(_series(
                    f"{name}_bucket",
                    list(labels) + [["le", repr(float(bound))]],
                    cumulative,
                ))
            cumulative += data["buckets"][len(HIST_BOUNDS)]
            lines.append(_series(
                f"{name}_bucket", list(labels) + [["le", "+Inf"]],
                cumulative,
            ))
            lines.append(_series(f"{name}_sum", labels, data["sum"]))
            lines.append(_series(f"{name}_count", labels, data["count"]))
    return "\n".join(lines) + "\n"


# -- Chrome trace-event format -----------------------------------------------


def chrome_trace(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Span dicts -> ``chrome://tracing`` trace-event JSON."""
    events = []
    for entry in spans:
        dur = entry.get("dur_s")
        event = {
            "name": entry.get("name", "?"),
            "cat": entry.get("name", "?").split(".", 1)[0],
            "ph": "X",
            "ts": float(entry.get("ts", 0.0)) * 1e6,
            "dur": float(dur) * 1e6 if dur is not None else 0.0,
            "pid": entry.get("pid", 0),
            "tid": entry.get("pid", 0),
            "args": {
                "trace": entry.get("trace"),
                "span": entry.get("span"),
                "parent": entry.get("parent"),
                "status": entry.get("status"),
                **(entry.get("attrs") or {}),
            },
        }
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- JSONL interchange -------------------------------------------------------


def write_spans_jsonl(spans: Iterable[Dict[str, Any]], path) -> int:
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for entry in spans:
            handle.write(json.dumps(entry) + "\n")
            count += 1
    return count


def read_spans_jsonl(path) -> List[Dict[str, Any]]:
    spans: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail / damage: skip
                if isinstance(entry, dict) and "span" in entry:
                    spans.append(entry)
    except OSError:
        return []
    return spans


# -- span tree + critical path -----------------------------------------------


def _index(spans: List[Dict[str, Any]]):
    by_id = {s["span"]: s for s in spans if s.get("span")}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for entry in spans:
        parent = entry.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(entry)
        else:
            roots.append(entry)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.get("ts", 0.0))
    roots.sort(key=lambda s: s.get("ts", 0.0))
    return by_id, children, roots


def _end_time(entry: Dict[str, Any]) -> float:
    return float(entry.get("ts", 0.0)) + float(entry.get("dur_s") or 0.0)


def critical_span_ids(spans: List[Dict[str, Any]]) -> Set[str]:
    """Span ids on the critical path: from each root, repeatedly
    descend into the child whose end time bounded the parent's."""
    _, children, roots = _index(spans)
    critical: Set[str] = set()
    for root in roots:
        node = root
        while node is not None:
            critical.add(node["span"])
            kids = children.get(node["span"])
            node = (
                max(kids, key=_end_time) if kids else None
            )
    return critical


def render_span_tree(
    spans: List[Dict[str, Any]], mark_critical: bool = True
) -> str:
    """The ``repro trace`` view: indentation = parentage, ``*`` =
    critical path, durations in ms."""
    if not spans:
        return "(no spans)"
    _, children, roots = _index(spans)
    critical = critical_span_ids(spans) if mark_critical else set()
    lines: List[str] = []

    def walk(entry: Dict[str, Any], depth: int) -> None:
        dur = entry.get("dur_s")
        dur_text = f"{float(dur) * 1000.0:.1f}ms" if dur is not None else "?"
        attrs = entry.get("attrs") or {}
        attr_text = " ".join(
            f"{key}={value}" for key, value in sorted(attrs.items())
        )
        star = " *" if entry.get("span") in critical else ""
        status = entry.get("status", "ok")
        status_text = "" if status == "ok" else f" [{status}]"
        line = (
            f"{'  ' * depth}{entry.get('name', '?')} {dur_text}"
            f"{status_text}"
        )
        if attr_text:
            line += f"  ({attr_text})"
        lines.append(line + star)
        for child in children.get(entry.get("span"), []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    lines.append("")
    lines.append("* = critical path")
    return "\n".join(lines)
