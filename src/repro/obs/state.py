"""Process-wide observability switches.

One tiny module with no intra-package imports so every other obs
module (and every instrumented hot path) can check ``state.enabled``
with a single attribute load and branch — the whole zero-cost-when-
disabled contract hangs on this check being that cheap.

``REPRO_OBS`` (``1``/``true``/``on``/``yes``) enables metrics and
tracing for the process; ``REPRO_LOG`` picks the structured-log level
(``debug``/``info``/``warn``/``error``/``off``, default ``info``).
Both can be overridden programmatically via
:func:`repro.obs.configure`.  Forked workers inherit the parent's
environment, so a fleet started under ``REPRO_OBS=1`` records
everywhere; remote workers read their own environment.
"""

from __future__ import annotations

import os

_TRUTHY = ("1", "true", "on", "yes")

#: Master switch for metrics recording and span creation.  Off by
#: default: library users pay one attribute load + branch per
#: instrumentation site and nothing else.
enabled: bool = (
    os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY
)

#: Structured-log threshold (see repro.obs.logging).  Log filtering is
#: independent of ``enabled`` — the serve daemon logs either way.
log_level: str = os.environ.get("REPRO_LOG", "info").strip() or "info"

#: Optional JSONL file client-side processes flush their finished
#: spans to on exit (``repro.cli`` honors it after server-backed
#: commands), so a distributed trace can be assembled from the client
#: and daemon halves.
trace_path: str = os.environ.get("REPRO_OBS_TRACE", "").strip()
