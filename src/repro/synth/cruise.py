"""The real-life vehicle cruise controller (CC) example of section 6.

The paper's CC model has 40 processes mapped on a two-cluster
architecture with two TTC nodes, two ETC nodes and a gateway; the
"speedup" part of the functionality runs on the ETC, the rest on the TTC;
one operating mode with a deadline of 250 ms.

The exact process graph is not published, so this module reconstructs a
functionally plausible CC with the stated topology (the quantities that
matter to the experiments — process count, cluster split, the number of
gateway crossings, one 40-process graph with a 250 ms deadline — are
matched; WCETs are chosen so the straightforward configuration misses the
deadline while the optimized ones meet it, the qualitative result the
paper reports: SF 320 ms > 250 ms; OS/SAS 185 ms).

Functional blocks:

* **acquisition** (TT1): wheel-speed and engine-state filtering chain;
* **reference** (TT2): driver-interface debouncing and set-point logic;
* **speedup control** (ET1/ET2): the PI speed controller, acceleration
  limiter and overshoot supervisor — the event-driven "speedup" part;
* **actuation** (TT1/TT2): throttle command synthesis and the final
  actuator driver (the end-to-end sink);
* **diagnostics** (ET2): logging/plausibility checks off the control path.
"""

from __future__ import annotations

from typing import Dict, List

from ..buses.can import CanBusSpec
from ..buses.ttp import TTPBusSpec
from ..model.application import Application, Dependency, Message, Process, ProcessGraph
from ..model.architecture import Architecture
from ..system import System

__all__ = ["cruise_controller_system", "CRUISE_DEADLINE", "CRUISE_PERIOD"]

#: Deadline of the cruise-controller mode (ms), as in the paper.
CRUISE_DEADLINE = 250.0
#: Activation period of the CC mode (ms).
CRUISE_PERIOD = 300.0


def _chain(
    processes: List[Process],
    dependencies: List[Dependency],
    names: List[str],
    node: str,
    wcets: List[float],
) -> None:
    """Append a same-node chain of processes linked by dependencies."""
    for name, wcet in zip(names, wcets):
        processes.append(Process(name=name, wcet=wcet, node=node))
    for a, b in zip(names, names[1:]):
        dependencies.append(Dependency(src=a, dst=b))


def cruise_controller_system() -> System:
    """Build the cruise-controller system (see module docstring)."""
    processes: List[Process] = []
    dependencies: List[Dependency] = []
    messages: List[Message] = []

    # -- acquisition on TT1 (8 processes) ---------------------------------
    _chain(
        processes,
        dependencies,
        [f"acq{i}" for i in range(8)],
        node="TT1",
        wcets=[2.88, 4.32, 3.6, 2.88, 4.32, 3.6, 2.88, 4.32],
    )

    # -- reference / driver interface on TT2 (8 processes) ----------------
    _chain(
        processes,
        dependencies,
        [f"ref{i}" for i in range(8)],
        node="TT2",
        wcets=[2.16, 3.6, 2.88, 4.32, 2.88, 3.6, 2.16, 3.6],
    )

    # -- speedup control on ET1 (8 processes) -----------------------------
    _chain(
        processes,
        dependencies,
        [f"ctl{i}" for i in range(8)],
        node="ET1",
        wcets=[3.6, 5.04, 4.32, 5.76, 4.32, 5.04, 3.6, 4.32],
    )

    # -- supervisor on ET2 (8 processes) -----------------------------------
    _chain(
        processes,
        dependencies,
        [f"sup{i}" for i in range(8)],
        node="ET2",
        wcets=[2.88, 3.6, 4.32, 3.6, 2.88, 4.32, 3.6, 2.88],
    )

    # -- actuation on TT1/TT2 (8 processes; act7 is the end-to-end sink) ---
    _chain(
        processes,
        dependencies,
        [f"act{i}" for i in range(4)],
        node="TT1",
        wcets=[2.88, 3.6, 2.88, 3.6],
    )
    _chain(
        processes,
        dependencies,
        [f"act{i}" for i in range(4, 8)],
        node="TT2",
        wcets=[3.6, 2.88, 3.6, 2.88],
    )
    dependencies.append(Dependency(src="act3", dst="act4"))

    # -- inter-block messages ----------------------------------------------
    # Control path: acquisition -> controller (TT->ET), reference ->
    # controller (TT->ET), controller -> actuation (ET->TT).
    messages.append(Message("m_speed", src="acq7", dst="ctl0", size=8))
    messages.append(Message("m_setpt", src="ref7", dst="ctl1", size=8))
    messages.append(Message("m_cmd", src="ctl7", dst="act0", size=12))
    # Supervisor taps: controller state to the supervisor (ET->ET) and a
    # supervisor override into the actuation chain (ET->TT).
    messages.append(Message("m_state", src="ctl4", dst="sup0", size=16))
    messages.append(Message("m_limit", src="sup7", dst="act4", size=8))
    # Acquisition snapshot for the supervisor (TT->ET).
    messages.append(Message("m_snap", src="acq5", dst="sup2", size=16))

    graph = ProcessGraph(
        name="CC",
        period=CRUISE_PERIOD,
        deadline=CRUISE_DEADLINE,
        processes=processes,
        messages=messages,
        dependencies=dependencies,
    )
    app = Application([graph])
    arch = Architecture(
        tt_nodes=["TT1", "TT2"],
        et_nodes=["ET1", "ET2"],
        gateway="NG",
        gateway_transfer_wcet=0.5,
    )
    can_spec = CanBusSpec(bit_time=0.02)  # 50 kbit/s body-domain CAN
    ttp_spec = TTPBusSpec(byte_time=1.0, slot_overhead=7.0)
    return System(app, arch, can_spec=can_spec, ttp_spec=ttp_spec)
