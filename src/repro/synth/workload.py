"""Full experimental workloads (the generated applications of section 6).

The paper's setup: two-cluster architectures with 2, 4, 6, 8 or 10 nodes
(half TTC, half ETC, plus the gateway), 40 processes per node — giving
applications of 80..400 processes — message sizes 8..32 bytes, WCETs from
uniform and exponential distributions, 30 random applications per design
point.  For Fig. 9c, 160-process applications with a controlled number of
inter-cluster (gateway) messages.

:func:`generate_workload` reproduces that recipe in three steps:

1. **Skeletons** — the application is split into random layered DAGs
   (:func:`repro.synth.graphgen.random_graph_structure`).
2. **Mapping** — every graph is homed in the currently lighter cluster
   and its processes spread over that cluster's nodes; individual
   processes are then flipped across the gateway until the number of
   inter-cluster arcs reaches the target (real automotive functions sit
   mostly in one domain with a few cross-domain signals — and Fig. 9c
   needs the count controlled exactly).
3. **Realization** — graphs are materialized (cross-node arcs become
   messages, same-node arcs dependencies) and WCETs are rescaled so every
   node lands on the target utilization.  The paper does not state its
   load levels; ~35% keeps most systems schedulable-but-tight, which is
   where the heuristics differentiate, and is overridable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..buses.can import CanBusSpec
from ..buses.ttp import TTPBusSpec
from ..exceptions import ConfigurationError
from ..model.application import Application, ProcessGraph
from ..model.architecture import Architecture
from ..model.topology import Cluster, Gateway, Topology
from ..system import System
from .graphgen import GraphShape, random_graph_structure, realize_graph

__all__ = ["WorkloadSpec", "generate_workload", "seeded_routes"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated application (paper defaults).

    ``gateway_messages`` is the number of inter-cluster arcs routed
    through the gateway.  The paper's Fig. 9c varies it between 10 and 50
    for 160-process applications; the default scales with the node count.
    """

    nodes: int = 4
    processes_per_node: int = 40
    period: float = 200.0
    deadline_factor: float = 1.0
    target_utilization: float = 0.25
    wcet_distribution: str = "uniform"
    message_size_range: Tuple[int, int] = (8, 32)
    graph_size_range: Tuple[int, int] = (8, 24)
    gateway_messages: Optional[int] = None
    gateway_transfer_wcet: float = 0.1
    seed: int = 0
    #: Cluster count: one TT cluster plus ``clusters - 1`` ET clusters
    #: (ET nodes dealt round-robin).  2 is the paper's canonical shape.
    clusters: int = 2
    #: Gateway count.  The first ``clusters - 1`` bridge the TT cluster
    #: to each ET cluster (connectivity); extras add parallel bridges
    #: round-robin, which is what makes routing a real decision.
    gateways: int = 1
    #: Route assignment for the generated system's evaluations:
    #: ``default`` (topology-shortest), ``greedy``
    #: (:func:`repro.optim.routing.greedy_routes`) or ``random``
    #: (seeded per-message pick via ``stable_unit``).
    route_strategy: str = "default"

    def total_processes(self) -> int:
        """Application size, e.g. 4 nodes * 40 = 160 processes."""
        return self.nodes * self.processes_per_node

    def gateway_message_target(self) -> int:
        """Resolved inter-cluster message count."""
        if self.gateway_messages is not None:
            return self.gateway_messages
        return 5 * self.nodes


def _make_architecture(spec: WorkloadSpec) -> Architecture:
    if spec.clusters < 2:
        raise ConfigurationError("clusters must be >= 2 (one TT + ET)")
    if spec.route_strategy not in ("default", "greedy", "random"):
        raise ConfigurationError(
            f"unknown route_strategy {spec.route_strategy!r} "
            "(known: default, greedy, random)"
        )
    n_tt = max(1, spec.nodes // 2)
    n_et = max(1, spec.nodes - n_tt)
    if spec.clusters == 2 and spec.gateways == 1:
        # The canonical construction, untouched: same node names, same
        # default topology, same architecture object graph — generated
        # systems (and everything keyed off them) are bit-identical to
        # the pre-topology generator.
        return Architecture(
            tt_nodes=[f"TT{i}" for i in range(1, n_tt + 1)],
            et_nodes=[f"ET{i}" for i in range(1, n_et + 1)],
            gateway="NG",
            gateway_transfer_wcet=spec.gateway_transfer_wcet,
        )
    et_clusters = spec.clusters - 1
    if spec.gateways < et_clusters:
        raise ConfigurationError(
            f"{spec.clusters} clusters need at least {et_clusters} "
            f"gateways to stay connected (got {spec.gateways})"
        )
    if n_et < et_clusters:
        raise ConfigurationError(
            f"{et_clusters} ET clusters need at least {et_clusters} ET "
            f"nodes; {spec.nodes} nodes yield only {n_et}"
        )
    tt_nodes = [f"TT{i}" for i in range(1, n_tt + 1)]
    et_nodes = [f"ET{i}" for i in range(1, n_et + 1)]
    buckets: List[List[str]] = [[] for _ in range(et_clusters)]
    for i, node in enumerate(et_nodes):
        buckets[i % et_clusters].append(node)
    clusters = [Cluster("TTC", "TT", tuple(tt_nodes))] + [
        Cluster(f"ETC{j + 1}", "ET", tuple(bucket))
        for j, bucket in enumerate(buckets)
    ]
    gws = [
        Gateway(f"NG{i + 1}", ("TTC", f"ETC{(i % et_clusters) + 1}"))
        for i in range(spec.gateways)
    ]
    return Architecture.from_topology(
        Topology(clusters, gws),
        gateway_transfer_wcet=spec.gateway_transfer_wcet,
    )


class _Skeleton:
    """One graph's structure plus its evolving process mapping."""

    def __init__(self, name, size, structure, mapping):
        self.name = name
        self.size = size
        self.structure = structure
        self.mapping: Dict[int, str] = mapping

    def cross_arcs(self, is_tt) -> int:
        """Number of arcs whose endpoints sit in different clusters."""
        count = 0
        for src, dst in self.structure[1]:
            if is_tt(self.mapping[src]) != is_tt(self.mapping[dst]):
                count += 1
        return count


def _steer_gateway_traffic(
    skeletons: List[_Skeleton],
    arch: Architecture,
    target: int,
    rng: random.Random,
    max_flips: int = 2000,
) -> None:
    """Flip single processes across clusters until the inter-cluster arc
    count reaches ``target`` (exactly when possible, else as close as the
    arc granularity allows — one flip moves every arc of the process).

    Incremental accounting: flipping one process toggles the crossing
    state of exactly its incident arcs, so the new total is
    ``current + degree - 2 * crossing_incident`` — no rescan of any arc
    list.  The decision sequence (and therefore the generated workload)
    is bit-identical to the original full-scan implementation, which
    survives as :func:`_steer_gateway_traffic_scan` for the benchmark
    baseline and the equivalence test.
    """
    is_tt = arch.is_tt_node
    tt_nodes = arch.tt_node_names()
    et_nodes = arch.et_node_names()

    # Per-skeleton incident lists and cluster bits, plus the global
    # cross-arc total — all maintained incrementally per kept flip.
    incident: List[List[List[int]]] = []
    bits: List[List[bool]] = []
    current = 0
    for skeleton in skeletons:
        neighbors: List[List[int]] = [[] for _ in range(skeleton.size)]
        for src, dst in skeleton.structure[1]:
            neighbors[src].append(dst)
            neighbors[dst].append(src)
        incident.append(neighbors)
        skeleton_bits = [
            is_tt(skeleton.mapping[i]) for i in range(skeleton.size)
        ]
        bits.append(skeleton_bits)
        current += sum(
            1
            for src, dst in skeleton.structure[1]
            if skeleton_bits[src] != skeleton_bits[dst]
        )

    # rng.randrange(n) and rng.choice(seq) both reduce to one
    # _randbelow(n) draw; binding it directly keeps the stream
    # bit-identical to the original randrange/choice calls while
    # skipping their per-call argument handling (this loop draws three
    # times per flip and runs hundreds of flips per workload).
    randbelow = rng._randbelow
    n_skeletons = len(skeletons)
    n_tt, n_et = len(tt_nodes), len(et_nodes)

    for _ in range(max_flips):
        if current == target:
            return
        which = randbelow(n_skeletons)
        skeleton = skeletons[which]
        index = randbelow(skeleton.size)
        skeleton_bits = bits[which]
        bit = skeleton_bits[index]  # the maintained is_tt(mapping[index])
        if bit:
            other = et_nodes[randbelow(n_et)]
        else:
            other = tt_nodes[randbelow(n_tt)]
        crossing = 0
        for n in incident[which][index]:
            if skeleton_bits[n] != bit:
                crossing += 1
        new_total = current + len(incident[which][index]) - 2 * crossing
        # Keep the flip only if it moves the count toward the target
        # without overshooting further than the old distance.
        if abs(new_total - target) < abs(current - target):
            skeleton.mapping[index] = other
            skeleton_bits[index] = not bit
            current = new_total


def _steer_gateway_traffic_scan(
    skeletons: List[_Skeleton],
    arch: Architecture,
    target: int,
    rng: random.Random,
    max_flips: int = 2000,
) -> None:
    """The original O(arcs)-per-flip steering (kept as the reference).

    Exists only for ``benchmarks/run_bench.py`` (the pre-kernel campaign
    baseline) and ``tests/test_workload.py``'s equivalence check; the
    production path is the incremental :func:`_steer_gateway_traffic`.
    """
    is_tt = arch.is_tt_node
    tt_nodes = arch.tt_node_names()
    et_nodes = arch.et_node_names()

    def total() -> int:
        return sum(s.cross_arcs(is_tt) for s in skeletons)

    for _ in range(max_flips):
        current = total()
        if current == target:
            return
        skeleton = rng.choice(skeletons)
        index = rng.randrange(skeleton.size)
        node = skeleton.mapping[index]
        other = rng.choice(et_nodes if is_tt(node) else tt_nodes)
        before = skeleton.cross_arcs(is_tt)
        skeleton.mapping[index] = other
        after = skeleton.cross_arcs(is_tt)
        new_total = current - before + after
        # Keep the flip only if it moves the count toward the target
        # without overshooting further than the old distance.
        if abs(new_total - target) < abs(current - target):
            continue
        skeleton.mapping[index] = node  # revert


def _scale_to_utilization(
    graphs: List[ProcessGraph], spec: WorkloadSpec
) -> None:
    """Rescale WCETs in place so each node hits the target utilization."""
    load: Dict[str, float] = {}
    for graph in graphs:
        for proc in graph.processes.values():
            load[proc.node] = load.get(proc.node, 0.0) + proc.wcet / graph.period
    for graph in graphs:
        for proc in graph.processes.values():
            utilization = load[proc.node]
            if utilization <= 0:
                continue
            factor = spec.target_utilization / utilization
            proc.wcet = round(proc.wcet * factor, 4)


def generate_workload(spec: WorkloadSpec) -> System:
    """Generate one random application + architecture (see module docstring)."""
    rng = random.Random(spec.seed)
    arch = _make_architecture(spec)
    tt_nodes = arch.tt_node_names()
    et_nodes = arch.et_node_names()
    node_load: Dict[str, int] = {n: 0 for n in tt_nodes + et_nodes}

    # Step 1+2: skeletons with cluster-homed mappings.
    skeletons: List[_Skeleton] = []
    remaining = spec.total_processes()
    graph_no = 0
    lo, hi = spec.graph_size_range
    while remaining > 0:
        size = min(remaining, rng.randint(lo, hi))
        if remaining - size < lo:
            size = remaining
        structure = random_graph_structure(GraphShape(processes=size), rng)
        # Home the whole graph on the least-loaded node of the lighter
        # cluster: functions colocate, so intra-graph arcs are mostly
        # same-node dependencies and bus traffic stays dominated by the
        # controlled inter-cluster messages (the paper's regime).
        tt_load = sum(node_load[n] for n in tt_nodes) / len(tt_nodes)
        et_load = sum(node_load[n] for n in et_nodes) / len(et_nodes)
        cluster = tt_nodes if tt_load <= et_load else et_nodes
        lightest = min(node_load[n] for n in cluster)
        home_node = rng.choice(
            [n for n in cluster if node_load[n] == lightest]
        )
        mapping: Dict[int, str] = {}
        for i in range(size):
            mapping[i] = home_node
            node_load[home_node] += 1
        skeletons.append(_Skeleton(f"G{graph_no}", size, structure, mapping))
        remaining -= size
        graph_no += 1
    _steer_gateway_traffic(skeletons, arch, spec.gateway_message_target(), rng)

    # Step 3: realize the graphs and normalize the load.
    graphs: List[ProcessGraph] = []
    for skeleton in skeletons:
        graphs.append(
            realize_graph(
                name=skeleton.name,
                shape=GraphShape(processes=skeleton.size),
                rng=rng,
                nodes=tt_nodes + et_nodes,
                period=spec.period,
                deadline=spec.period * spec.deadline_factor,
                wcet_distribution=spec.wcet_distribution,
                message_size_range=spec.message_size_range,
                mapping=skeleton.mapping,
                structure=skeleton.structure,
            )
        )
    _scale_to_utilization(graphs, spec)
    app = Application(graphs)
    can_spec = CanBusSpec(bit_time=0.002)  # 500 kbit/s in ms
    ttp_spec = TTPBusSpec(byte_time=0.02, slot_overhead=0.1)
    return System(app, arch, can_spec=can_spec, ttp_spec=ttp_spec)


def seeded_routes(system: System, spec: WorkloadSpec):
    """Route overrides for a generated system per ``route_strategy``.

    ``default`` returns ``{}`` (canonical configs stay canonical);
    ``greedy`` delegates to :func:`repro.optim.routing.greedy_routes`;
    ``random`` picks per message among its candidate routes with a
    :func:`repro.faults.stable_unit` draw keyed by the workload seed —
    process-stable, so both engines, every worker and every replay see
    the same assignment.  Only non-default decisions are returned.
    """
    if spec.route_strategy == "default":
        return {}
    from ..optim.routing import greedy_routes, route_candidates

    if spec.route_strategy == "greedy":
        return greedy_routes(system)
    if spec.route_strategy != "random":
        raise ConfigurationError(
            f"unknown route_strategy {spec.route_strategy!r}"
        )
    from ..faults.spec import stable_unit

    topo = system.arch.topology
    overrides: Dict[str, Tuple[str, ...]] = {}
    for msg in system.app.all_messages():
        src, dst = system.clusters_of_message(msg.name)
        if src == dst:
            continue
        candidates = route_candidates(system, msg.name)
        pick = candidates[
            int(stable_unit(spec.seed, "route", msg.name) * len(candidates))
        ]
        if pick != topo.default_route(src, dst):
            overrides[msg.name] = pick
    return overrides
