"""Workload synthesis: paper examples, random graphs, cruise controller."""

from .cruise import CRUISE_DEADLINE, CRUISE_PERIOD, cruise_controller_system
from .graphgen import GraphShape, random_graph_structure, realize_graph
from .paper_example import FIG4_DEADLINE, fig4_configuration, fig4_system
from .workload import WorkloadSpec, generate_workload, seeded_routes

__all__ = [
    "CRUISE_DEADLINE",
    "CRUISE_PERIOD",
    "FIG4_DEADLINE",
    "GraphShape",
    "WorkloadSpec",
    "cruise_controller_system",
    "fig4_configuration",
    "fig4_system",
    "generate_workload",
    "random_graph_structure",
    "realize_graph",
    "seeded_routes",
]
