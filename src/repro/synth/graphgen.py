"""Random process-graph generation (the synthetic workloads of section 6).

The paper evaluates on randomly generated process graphs: two-cluster
architectures of 2..10 nodes, 40 processes per node, message sizes drawn
from 8..32 bytes, WCETs drawn from uniform and exponential distributions.
This module generates one layered DAG at a time; the full experiment
workloads (applications of many graphs mapped across both clusters) are
assembled by :mod:`repro.synth.workload`.

The generator is deterministic for a given :class:`random.Random`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.application import Dependency, Message, Process, ProcessGraph

__all__ = ["GraphShape", "random_graph_structure", "realize_graph"]


@dataclass(frozen=True)
class GraphShape:
    """Structural parameters of one random process graph.

    ``width`` bounds the number of parallel processes per layer;
    ``extra_edge_prob`` adds cross-layer edges beyond the spanning ones,
    thickening the DAG.
    """

    processes: int
    width: int = 4
    extra_edge_prob: float = 0.2


def random_graph_structure(
    shape: GraphShape, rng: random.Random
) -> Tuple[List[List[int]], List[Tuple[int, int]]]:
    """Generate a layered DAG skeleton.

    Returns ``(layers, edges)`` where ``layers`` lists process indices per
    layer and ``edges`` are ``(src_index, dst_index)`` pairs.  Every
    non-source process has at least one predecessor in an earlier layer,
    so the DAG is connected from the sources downward.
    """
    if shape.processes <= 0:
        raise ValueError("a graph needs at least one process")
    layers: List[List[int]] = []
    remaining = shape.processes
    index = 0
    while remaining > 0:
        width = min(remaining, rng.randint(1, max(1, shape.width)))
        layers.append(list(range(index, index + width)))
        index += width
        remaining -= width
    edges: List[Tuple[int, int]] = []
    for layer_no in range(1, len(layers)):
        previous = layers[layer_no - 1]
        earlier = [p for layer in layers[:layer_no] for p in layer]
        for dst in layers[layer_no]:
            src = rng.choice(previous)
            edges.append((src, dst))
            if rng.random() < shape.extra_edge_prob and len(earlier) > 1:
                extra = rng.choice(earlier)
                if extra != src and (extra, dst) not in edges:
                    edges.append((extra, dst))
    return layers, edges


def realize_graph(
    name: str,
    shape: GraphShape,
    rng: random.Random,
    nodes: Sequence[str],
    period: float,
    deadline: float,
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    wcet_distribution: str = "uniform",
    message_size_range: Tuple[int, int] = (8, 32),
    mapping: Optional[Dict[int, str]] = None,
    structure: Optional[Tuple[List[List[int]], List[Tuple[int, int]]]] = None,
) -> ProcessGraph:
    """Instantiate a :class:`ProcessGraph` from a random skeleton.

    ``mapping`` optionally pins process indices to nodes; unpinned
    processes are mapped uniformly at random.  Cross-node arcs become
    messages (sizes uniform in ``message_size_range``), same-node arcs
    become plain dependencies, following the paper's model (section 2.1).

    ``structure`` injects a pre-generated ``(layers, edges)`` skeleton —
    used when the caller needs to inspect the edges (e.g. to steer the
    inter-cluster traffic) before the graph is materialized.

    ``wcet_distribution`` is ``"uniform"`` or ``"exponential"`` — the two
    distributions of the paper's experiments.  Exponential draws use the
    mid-range as the mean and are clamped into ``wcet_range``.
    """
    if structure is None:
        structure = random_graph_structure(shape, rng)
    _layers, edges = structure
    lo, hi = wcet_range
    processes: List[Process] = []
    node_of: Dict[int, str] = {}
    for i in range(shape.processes):
        node = mapping.get(i) if mapping else None
        if node is None:
            node = rng.choice(list(nodes))
        node_of[i] = node
        if wcet_distribution == "uniform":
            wcet = rng.uniform(lo, hi)
        elif wcet_distribution == "exponential":
            wcet = min(hi, max(lo, rng.expovariate(2.0 / (lo + hi))))
        else:
            raise ValueError(f"unknown WCET distribution {wcet_distribution!r}")
        processes.append(
            Process(name=f"{name}_P{i}", wcet=round(wcet, 3), node=node)
        )
    messages: List[Message] = []
    dependencies: List[Dependency] = []
    size_lo, size_hi = message_size_range
    for msg_index, (src, dst) in enumerate(edges):
        src_name = f"{name}_P{src}"
        dst_name = f"{name}_P{dst}"
        if node_of[src] == node_of[dst]:
            dependencies.append(Dependency(src=src_name, dst=dst_name))
        else:
            messages.append(
                Message(
                    name=f"{name}_m{msg_index}",
                    src=src_name,
                    dst=dst_name,
                    size=rng.randint(size_lo, size_hi),
                )
            )
    return ProcessGraph(
        name=name,
        period=period,
        deadline=deadline,
        processes=processes,
        messages=messages,
        dependencies=dependencies,
    )
