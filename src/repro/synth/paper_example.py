"""The paper's running example (Fig. 1 graph G1 on the Fig. 3 platform).

Process graph ``G1``: ``P1 -> m1 -> P2``, ``P1 -> m2 -> P3``,
``P2 -> m3 -> P4`` with ``C1 = C4 = 30``, ``C2 = C3 = 20`` (ms), period
240 ms and deadline 200 ms.  ``P1`` and ``P4`` run on TTC node ``N1``;
``P2`` and ``P3`` on ETC node ``N2``; the gateway ``NG`` relays ``m1``,
``m2`` (TT->ET) and ``m3`` (ET->TT).  The CAN frame time is fixed at
10 ms, the gateway transfer process costs ``C_T = 5`` ms, and the TDMA
round has two 20 ms slots (section 4.2).

Three configurations are studied in Fig. 4:

* ``a`` — slot order [S_G, S1], ``priority(P3) > priority(P2)``:
  ``G1`` misses its 200 ms deadline (``r_G1 = 210``).
* ``b`` — slot order [S1, S_G], same priorities: the deadline is met.
* ``c`` — slot order of (a), ``priority(P2) > priority(P3)``: the paper
  reports the deadline met; see EXPERIMENTS.md for the reproduction
  delta on this variant.
"""

from __future__ import annotations

from ..buses.can import CanBusSpec
from ..buses.ttp import Slot, TTPBusConfig
from ..model.application import Application, Message, Process, ProcessGraph
from ..model.architecture import Architecture
from ..model.configuration import PriorityAssignment, SystemConfiguration
from ..system import System

__all__ = ["fig4_system", "fig4_configuration", "FIG4_DEADLINE"]

#: Deadline of graph G1 in the example (ms).
FIG4_DEADLINE = 200.0


def fig4_system() -> System:
    """Build the example system of Fig. 3 / section 4.2."""
    graph = ProcessGraph(
        name="G1",
        period=240.0,
        deadline=FIG4_DEADLINE,
        processes=[
            Process("P1", wcet=30.0, node="N1"),
            Process("P2", wcet=20.0, node="N2"),
            Process("P3", wcet=20.0, node="N2"),
            Process("P4", wcet=30.0, node="N1"),
        ],
        messages=[
            Message("m1", src="P1", dst="P2", size=8),
            Message("m2", src="P1", dst="P3", size=8),
            Message("m3", src="P2", dst="P4", size=8),
        ],
    )
    app = Application([graph])
    arch = Architecture(
        tt_nodes=["N1"],
        et_nodes=["N2"],
        gateway="NG",
        gateway_transfer_wcet=5.0,
    )
    can_spec = CanBusSpec(fixed_frame_time=10.0)
    return System(app, arch, can_spec=can_spec)


def fig4_configuration(variant: str = "a") -> SystemConfiguration:
    """System configuration ``ψ`` for variant ``a``, ``b`` or ``c``."""
    slot_gateway = Slot(node="NG", capacity=8, duration=20.0)
    slot_n1 = Slot(node="N1", capacity=16, duration=20.0)
    if variant in ("a", "c"):
        bus = TTPBusConfig([slot_gateway, slot_n1])
    elif variant == "b":
        bus = TTPBusConfig([slot_n1, slot_gateway])
    else:
        raise ValueError(f"unknown Fig. 4 variant {variant!r}")
    if variant == "c":
        process_priorities = {"P2": 1, "P3": 2}
    else:
        process_priorities = {"P3": 1, "P2": 2}
    priorities = PriorityAssignment(
        process_priorities=process_priorities,
        message_priorities={"m1": 1, "m2": 2, "m3": 3},
    )
    return SystemConfiguration(bus=bus, priorities=priorities)
