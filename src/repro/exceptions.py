"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Each subclass corresponds to a distinct failure mode
of the modelling, analysis or synthesis layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """An application or architecture model is malformed.

    Examples: a message whose sender and receiver are the same process, a
    process mapped to an unknown node, a cyclic process graph.
    """


class MappingError(ModelError):
    """A process references a node that does not exist, or a node is used
    in a way incompatible with its cluster (e.g. a TT process on an ETC
    node)."""


class ConfigurationError(ReproError):
    """A system configuration (offsets, bus schedule, priorities) is
    inconsistent with the application/architecture it configures."""


class AnalysisError(ReproError):
    """The schedulability analysis could not complete."""


class ConvergenceError(AnalysisError):
    """A fixed-point iteration (response-time analysis or the multi-cluster
    loop) failed to converge within its iteration budget.

    This typically indicates utilization above 100% on a processor or bus,
    which the paper's termination argument (section 4) excludes.
    """


class UnschedulableError(AnalysisError):
    """Raised by synthesis entry points that require a schedulable result
    when no schedulable configuration could be found."""


class SchedulingError(ReproError):
    """The static (list) scheduler could not place every process/message,
    e.g. because a schedule table slot cannot accommodate a frame."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class StoreError(ReproError):
    """A persistent result store directory cannot be opened safely,
    e.g. its meta file is unreadable or carries a newer schema version
    than this library understands.  (Damaged *records*, by contrast,
    never raise: the store skips them and the caller recomputes.)"""
