"""Route resolution and the hop ("leg") iterator.

PR 3 centralized the *per-hop* timing rules (readiness, transfer delay,
FIFO competition) in :mod:`repro.semantics.contract`; this module owns
the *path* those rules are applied along.  A message's **route** is the
tuple of gateway names it crosses (see
:meth:`repro.model.topology.Topology.routes_between`); its **legs** are
the queue-and-bus stages the route induces:

* a ``can`` leg — the message waits in a priority-ordered queue
  (``Out_<node>`` at its source, ``Out_CAN`` at a gateway) and then
  arbitrates on one ET cluster's CAN bus;
* a ``fifo`` leg — the message waits in a gateway's arrival-ordered
  ``Out_TTP`` queue and departs in that gateway's TDMA slot, becoming
  available to every TT node *and every other gateway on the TT bus* at
  the slot's end (TTP is a broadcast bus).

Every gateway crossing pays that gateway's transfer WCET ``C_T`` once,
*before* entering the next leg's queue (``Leg.via`` names the gateway
charged).  A TT-sourced message has no leg for its first hop — the MEDL
frame is placed by the static schedule — so its leg list starts at the
first gateway's ``Out_CAN``.

With one TT cluster (the engine scope) a route contains at most one
``fifo`` leg, which is why the classic ``rho.ttp[m]`` record stays
single-valued under the generalization.

Queue naming: single-gateway topologies keep the paper's bare
``Out_CAN`` / ``Out_TTP`` names (every existing trace, report and store
artefact depends on them); multi-gateway topologies qualify the queue
with its owner, ``Out_CAN@NG1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError, ModelError
from ..model.architecture import MessageRoute
from ..system import System

__all__ = [
    "Leg",
    "RoutingPlan",
    "out_can_queue",
    "out_ttp_queue",
    "resolve_routes",
]


@dataclass(frozen=True)
class Leg:
    """One queue-and-bus stage of a message's route (see module doc).

    ``kind`` is ``"can"`` or ``"fifo"``; ``cluster`` names the cluster
    whose bus carries the leg; ``sender`` is the node transmitting on
    that bus (the application's source node for a first ``can`` leg, a
    gateway otherwise); ``via`` is the gateway whose transfer process
    ``C_T`` is paid immediately before this leg's queue (``None`` for a
    source leg — the sender enqueues directly); ``queue`` is the output
    queue drained for the leg.
    """

    kind: str
    cluster: str
    sender: str
    via: Optional[str]
    queue: str

    @property
    def is_fifo(self) -> bool:
        return self.kind == "fifo"


def _qualify(system: System, base: str, gateway: str) -> str:
    """Gateway queue name: bare on single-gateway topologies."""
    if len(system.arch.topology.gateways) == 1:
        return base
    return f"{base}@{gateway}"


def out_can_queue(system: System, gateway: str) -> str:
    """Name of a gateway's priority-ordered CAN-bound queue."""
    return _qualify(system, "Out_CAN", gateway)


def out_ttp_queue(system: System, gateway: str) -> str:
    """Name of a gateway's arrival-ordered TTP-bound FIFO."""
    return _qualify(system, "Out_TTP", gateway)


def resolve_routes(
    system: System,
    overrides: Optional[Mapping[str, Tuple[str, ...]]] = None,
) -> Dict[str, Tuple[str, ...]]:
    """Effective route of every inter-cluster message.

    Merges per-message overrides (the ``routes`` component of a
    :class:`repro.model.configuration.SystemConfiguration`) over the
    topology's default shortest routes, validating each override
    against the cluster graph.  Intra-cluster messages never appear.
    """
    topo = system.arch.topology
    routes: Dict[str, Tuple[str, ...]] = {}
    overrides = overrides or {}
    for name in sorted(overrides):
        if name not in {m.name for m in system.app.all_messages()}:
            raise ConfigurationError(
                f"route override names unknown message {name}"
            )
    for msg in system.app.all_messages():
        src, dst = system.clusters_of_message(msg.name)
        if src == dst:
            if msg.name in overrides and tuple(overrides[msg.name]):
                raise ConfigurationError(
                    f"message {msg.name} is intra-cluster; it cannot "
                    "carry a gateway route"
                )
            continue
        if msg.name in overrides:
            route = tuple(overrides[msg.name])
            try:
                topo.validate_route(src, dst, route)
            except ModelError as exc:
                raise ConfigurationError(
                    f"invalid route for message {msg.name}: {exc}"
                ) from None
        else:
            route = topo.default_route(src, dst)
        routes[msg.name] = route
    return routes


class RoutingPlan:
    """Resolved routes plus every per-leg index the engines consume.

    Construction is cheap (linear in messages × hops) and deterministic;
    a :class:`repro.system.System` caches the all-defaults plan
    (:meth:`repro.system.System.default_routing`).
    """

    def __init__(
        self,
        system: System,
        overrides: Optional[Mapping[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.system = system
        self.routes = resolve_routes(system, overrides)
        self.legs: Dict[str, Tuple[Leg, ...]] = {}
        topo = system.arch.topology
        for name, route in self.routes.items():
            self.legs[name] = self._build_legs(name, route)
        # Intra-cluster ET->ET messages have a single source CAN leg.
        for name in system.can_messages():
            if name not in self.legs:
                msg = system.app.message(name)
                src_node = system.app.process(msg.src).node
                cluster = system.arch.cluster_of_node(src_node)
                self.legs[name] = (
                    Leg(
                        kind="can",
                        cluster=cluster,
                        sender=src_node,
                        via=None,
                        queue=f"Out_{src_node}",
                    ),
                )
        # -- indexes -----------------------------------------------------
        #: messages resident in each gateway's Out_TTP FIFO, sorted.
        self.fifo_users: Dict[str, List[str]] = {
            gw: [] for gw in topo.gateway_names()
        }
        #: (message, leg position) pairs per ET cluster bus, sorted by
        #: message name then leg position — the CAN arbitration domains.
        self.can_legs_on: Dict[str, List[Tuple[str, int]]] = {
            c: [] for c in topo.et_clusters()
        }
        for name in sorted(self.legs):
            for pos, leg in enumerate(self.legs[name]):
                if leg.is_fifo:
                    self.fifo_users[leg.sender].append(name)
                else:
                    self.can_legs_on[leg.cluster].append((name, pos))

    def _build_legs(self, name: str, route: Tuple[str, ...]) -> Tuple[Leg, ...]:
        system = self.system
        topo = system.arch.topology
        msg = system.app.message(name)
        src_node = system.app.process(msg.src).node
        here, dst_cluster = system.clusters_of_message(name)
        legs: List[Leg] = []
        if not topo.clusters[here].is_tt:
            legs.append(
                Leg(
                    kind="can",
                    cluster=here,
                    sender=src_node,
                    via=None,
                    queue=f"Out_{src_node}",
                )
            )
        for gateway in route:
            gw = topo.gateways[gateway]
            nxt = gw.other(here)
            if topo.clusters[nxt].is_tt:
                legs.append(
                    Leg(
                        kind="fifo",
                        cluster=nxt,
                        sender=gateway,
                        via=gateway,
                        queue=out_ttp_queue(system, gateway),
                    )
                )
            else:
                legs.append(
                    Leg(
                        kind="can",
                        cluster=nxt,
                        sender=gateway,
                        via=gateway,
                        queue=out_can_queue(system, gateway),
                    )
                )
            here = nxt
        if here != dst_cluster:
            raise ConfigurationError(
                f"route of message {name} ends at cluster {here}, "
                f"expected {dst_cluster}"
            )
        return tuple(legs)

    # -- queries ----------------------------------------------------------

    def route_of(self, name: str) -> Tuple[str, ...]:
        """Gateways crossed by a message (empty for intra-cluster)."""
        return self.routes.get(name, ())

    def legs_of(self, name: str) -> Tuple[Leg, ...]:
        """The message's legs in traversal order (empty for TT->TT/local)."""
        return self.legs.get(name, ())

    def fifo_leg(self, name: str) -> Optional[Leg]:
        """The unique FIFO leg of a message, if its route has one."""
        for leg in self.legs.get(name, ()):
            if leg.is_fifo:
                return leg
        return None

    def final_leg(self, name: str) -> Optional[Leg]:
        """The leg that delivers to the destination cluster."""
        legs = self.legs.get(name, ())
        return legs[-1] if legs else None

    def is_default(self) -> bool:
        """True when every message takes its topology-default route."""
        topo = self.system.arch.topology
        for name, route in self.routes.items():
            src, dst = self.system.clusters_of_message(name)
            if route != topo.default_route(src, dst):
                return False
        return True

    def key(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """Canonical hashable form (for kernel/cache invalidation)."""
        return tuple(sorted(self.routes.items()))

    def __repr__(self) -> str:
        multi = sum(1 for legs in self.legs.values() if len(legs) > 1)
        return (
            f"RoutingPlan({len(self.routes)} routed messages, "
            f"{multi} multi-leg)"
        )
