"""The timing-semantics contract shared by analysis and simulation.

The paper's soundness claim — the holistic analysis *dominates* observed
behaviour — is only as strong as the agreement between the two sides on
three pieces of platform semantics.  Historically each side had a private
copy and they drifted (the seed=1654 gateway divergence, see DESIGN.md);
this module is now the single owner.

**Message readiness.**  A message is available to its consumer only once
the carrying frame is *fully received*: at the CAN frame's completion for
an ET-side consumer, at the TDMA slot's end for a TTP-borne frame.  A TT
consumer may be dispatched at, but never before, the availability of every
one of its input messages (:func:`dispatch_respects_arrival`).

**Gateway transfer timing.**  Every inter-cluster hop pays the transfer
process ``T`` once (:func:`gateway_transfer_delay`): a TT->ET frame is
copied from the MBI into the priority-ordered ``Out_CAN`` queue, an ET->TT
frame from the CAN controller into the FIFO ``Out_TTP`` queue.  An ET->TT
message therefore enters ``Out_TTP`` at worst at
:func:`ettt_queue_instant` and becomes available to its TT consumer at
the *end* of the gateway slot that finally carries it (``O + J + w + C``
of the TTP leg — the ``worst_end`` composition of
:class:`repro.analysis.timing.ActivityTiming`).

**Out_TTP is a FIFO — CAN priorities do not order it.**  The gateway slot
drains ``Out_TTP`` front-first by *arrival order*; a message with a lower
CAN priority that reached the gateway earlier occupies slot capacity ahead
of a higher-priority one.  Any byte-ahead analysis of the FIFO must
therefore charge **every** other ET->TT message
(:func:`fifo_competitors`), not just the higher-priority ones.  Filtering
by priority was exactly the seed=1654 unsoundness: the analysis ignored a
lower-priority 8-byte frame sitting in front, under-estimated the drain by
one TDMA round, and the static schedule dispatched the consumer one round
before its input arrived in simulation.

**The ET->TT arrival-floor ratchet.**  The Fig. 5 loop re-derives TT
offsets from the latest arrival bounds; to exclude limit cycles the
per-message schedule constraint only ever ratchets upward
(:func:`ratchet_arrival_floors`).  Monotone growth preserves soundness —
a larger arrival bound only delays TT consumers further — and, combined
with the FIFO rule above, yields the dominance invariant enforced by
:mod:`repro.conformance`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from ..system import System

__all__ = [
    "DISPATCH_TOLERANCE",
    "dispatch_respects_arrival",
    "et_to_tt_constraint",
    "ettt_queue_instant",
    "fifo_competitors",
    "fifo_drain_rounds",
    "gateway_transfer_delay",
    "ratchet_arrival_floors",
]

#: Tolerance used when comparing a dispatch instant against an arrival
#: bound (floating-point slack of the schedule construction; a frame
#: arriving exactly at the dispatch instant counts as present).
DISPATCH_TOLERANCE = 1e-9


def gateway_transfer_delay(
    system: System, gateway: Optional[str] = None
) -> float:
    """Worst-case cost of one gateway hop (the transfer process ``C_T``).

    Paid once per crossing of ``gateway`` — a frame is copied from the
    inbound controller (MBI or CAN) into the outbound queue (``Out_CAN``
    or ``Out_TTP``) of *that* gateway.  The simulator delays the frame
    by exactly this much; the analysis adds it to the message's queueing
    jitter.  ``gateway=None`` (every pre-generalization call site) means
    the architecture-wide default ``C_T``; per-gateway overrides come
    from the :class:`repro.model.topology.Gateway` record.
    """
    if gateway is None:
        return system.arch.gateway_transfer_wcet
    return system.arch.transfer_wcet_of(gateway)


def fifo_competitors(
    system: System, msg: str, plan=None, gateway: Optional[str] = None
) -> List[str]:
    """Every other message that can occupy a gateway ``Out_TTP`` FIFO
    ahead of ``msg``.

    The FIFO is ordered by arrival, **not** by CAN priority, so the
    competitor set is priority-blind: every other message routed through
    the *same gateway's* FIFO competes for that gateway slot's bytes.
    This is the interference set every byte-ahead bound of the FIFO
    (queue delay and buffer occupancy alike) must charge.

    Without a routing ``plan`` (every pre-generalization call site) the
    competitors are all other ET->TT messages — exactly the single
    FIFO of the canonical topology.  With a plan, the set is the other
    users of ``gateway``'s FIFO (``gateway=None`` resolves to the FIFO
    leg of ``msg`` itself), which includes ET->ET messages transiting
    the TT cluster.
    """
    if plan is None:
        return [other for other in system.et_to_tt_messages() if other != msg]
    if gateway is None:
        leg = plan.fifo_leg(msg)
        if leg is None:
            return []
        gateway = leg.sender
    return [
        other for other in plan.fifo_users.get(gateway, []) if other != msg
    ]


def fifo_drain_rounds(
    own_size: float,
    bytes_ahead: float,
    count_ahead: int,
    capacity: float,
    max_size: float,
) -> int:
    """Worst-case gateway rounds until a FIFO message departs.

    The gateway slot packs **whole frames**: a message either fits
    entirely into the slot's remaining capacity or waits for the next
    round, so the paper's byte-granular ``ceil((S_m + I_m)/size_SG)`` is
    an *under*-estimate — a 32-byte slot facing 10+26+19+18 bytes ahead
    of a 32-byte message needs five rounds, not four (head-of-line
    fragmentation; found by the conformance campaign).  Two sound upper
    bounds, combined by minimum:

    * **one-slot**: when everything ahead plus the message itself fits
      one slot (``bytes_ahead + own_size <= capacity``) the front-first
      drain never blocks and one round suffices — exact;
    * **count**: every round ships at least the head message (every
      message fits an empty slot — validated at configuration time), so
      ``count_ahead`` whole arrivals ahead drain in at most
      ``count_ahead`` rounds and the message departs by round
      ``count_ahead + 1``;
    * **gap**: each of the ``r - 1`` rounds before the departure round
      ended because some pending frame did not fit, wasting *strictly
      less* than the largest pending frame (``max_size``, own message
      included), so while ``max_size < capacity`` each drained more
      than ``gap = capacity - max_size`` bytes of the ``bytes_ahead``
      backlog: ``(r-1) * gap < bytes_ahead``, i.e. ``r <=
      ceil(bytes_ahead / gap)``.

    ``count_ahead`` must count *message instances* (the interference
    hits), not bytes.  Monotone in every argument, preserving the fixed
    point's convergence argument.
    """
    if bytes_ahead <= 0 or bytes_ahead + own_size <= capacity + 1e-12:
        return 1
    rounds = count_ahead + 1
    if max_size < capacity:
        gap_rounds = math.ceil(
            bytes_ahead / (capacity - max_size) - 1e-12
        )
        if gap_rounds < rounds:
            rounds = gap_rounds
    return rounds


def ettt_queue_instant(offset: float, queue_jitter: float) -> float:
    """Worst-case absolute instant an ET->TT message enters ``Out_TTP``.

    ``offset`` is the message's earliest transmission ``O_m``;
    ``queue_jitter`` is ``J'_m = r_m^CAN + r_T`` (CAN response plus the
    gateway transfer).
    """
    return offset + queue_jitter


def et_to_tt_constraint(
    msg_name: str,
    rho: Optional[object],
    arrival_floors: Optional[Mapping[str, float]],
) -> float:
    """Schedule-table constraint for the TT consumer of an ET->TT message.

    The worst-case availability per the previous analysis pass (``rho``,
    a :class:`repro.analysis.timing.ResponseTimes`), merged with the
    multi-cluster loop's monotonic ``arrival_floors`` ratchet.  On the
    very first pass (``rho is None``) the ETC influence is ignored,
    exactly as the initial-offset step of Fig. 5 prescribes.
    """
    arrival = 0.0
    if rho is not None and msg_name in rho.ttp:
        end = rho.ttp[msg_name].worst_end
        if not math.isinf(end):
            arrival = end
    if arrival_floors is not None:
        arrival = max(arrival, arrival_floors.get(msg_name, 0.0))
    return arrival


def ratchet_arrival_floors(floors: Dict[str, float], rho) -> Dict[str, float]:
    """Monotonically fold the latest ET->TT availability bounds into
    ``floors`` (in place; returned for convenience).

    A message's schedule constraint never decreases between Fig. 5
    iterations: this damping removes the limit cycles a literal
    re-derivation can fall into — an offset shift moves a frame to an
    earlier TDMA round, which shifts the offset back — while preserving
    soundness (a larger arrival bound only delays TT consumers further).
    """
    for msg_name, timing in rho.ttp.items():
        end = timing.worst_end
        if math.isfinite(end):
            floors[msg_name] = max(floors.get(msg_name, 0.0), end)
    return floors


def dispatch_respects_arrival(
    dispatch_time: float,
    arrival_time: Optional[float],
    tolerance: float = DISPATCH_TOLERANCE,
) -> bool:
    """TT dispatch eligibility: is an input message present at dispatch?

    ``arrival_time`` is the absolute instant the message became available
    (``None`` when it has not arrived at all).  A frame arriving exactly
    at the dispatch instant counts as present — the TTC kernel reads the
    MBI after the controller committed the frame, the boundary case of
    the paper's worked example.
    """
    if arrival_time is None:
        return False
    return arrival_time <= dispatch_time + tolerance
