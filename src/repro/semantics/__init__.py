"""Shared timing semantics of the two-cluster platform.

One module owns the semantics both the analytic side (scheduler, holistic
analysis, compiled kernel, buffer bounds) and the operational side (the
discrete-event simulator) must agree on — message readiness, gateway
transfer timing, Out_TTP FIFO ordering and TT dispatch eligibility — so
the two can never drift again.  See :mod:`repro.semantics.contract` for
the contract itself and DESIGN.md ("The shared timing-semantics
contract") for the dominance invariant it guarantees.
"""

from .contract import (
    DISPATCH_TOLERANCE,
    dispatch_respects_arrival,
    et_to_tt_constraint,
    ettt_queue_instant,
    fifo_competitors,
    fifo_drain_rounds,
    gateway_transfer_delay,
    ratchet_arrival_floors,
)
from .routing import (
    Leg,
    RoutingPlan,
    out_can_queue,
    out_ttp_queue,
    resolve_routes,
)

__all__ = [
    "Leg",
    "RoutingPlan",
    "out_can_queue",
    "out_ttp_queue",
    "resolve_routes",
    "DISPATCH_TOLERANCE",
    "dispatch_respects_arrival",
    "et_to_tt_constraint",
    "ettt_queue_instant",
    "fifo_competitors",
    "fifo_drain_rounds",
    "gateway_transfer_delay",
    "ratchet_arrival_floors",
]
