"""repro — schedulability analysis and synthesis for multi-cluster
distributed embedded systems.

Reproduction of Pop, Eles, Peng, *"Schedulability Analysis and
Optimization for the Synthesis of Multi-Cluster Distributed Embedded
Systems"*, DATE 2003.

Quickstart (the :mod:`repro.api` facade is the supported entry point)::

    from repro.api import Session
    from repro import Application, Architecture, Message, Process, ProcessGraph, System

    graph = ProcessGraph("G1", period=240, deadline=200, processes=[...],
                         messages=[...])
    system = System(Application([graph]),
                    Architecture(tt_nodes=["N1"], et_nodes=["N2"]))
    session = Session(system)
    synth = session.synthesize()              # synthesize beta + pi (OS)
    print(synth.schedulable, synth.best.total_buffers)
    runs = session.evaluate_many(configs, workers=4)   # batch evaluation

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.api` — the public facade: :class:`Session`, pluggable
  evaluation backends, the unified :class:`RunResult`, batch evaluation;
* :mod:`repro.model` — applications, architectures, configurations;
* :mod:`repro.buses` — TTP/TDMA and CAN protocol substrates;
* :mod:`repro.schedule` — static list scheduling (schedule tables, MEDL);
* :mod:`repro.analysis` — the multi-cluster schedulability and buffer
  analyses (section 4);
* :mod:`repro.optim` — SF/OS/OR heuristics and the SA baselines
  (sections 5–6);
* :mod:`repro.synth` — paper examples and random workload generation;
* :mod:`repro.sim` — discrete-event simulator used for validation;
* :mod:`repro.semantics` — the timing-semantics contract shared by the
  scheduler, the analyses and the simulator (message readiness, gateway
  transfer, FIFO drain, dispatch eligibility);
* :mod:`repro.conformance` — the simulator–analysis conformance
  harness: seeded campaigns, violation classification, counterexample
  shrinking, replayable fixtures (CLI: ``repro conform``);
* :mod:`repro.store` — the persistent experiment store: a
  content-addressed, append-only on-disk result store that plugs into
  :class:`Session` as a second memo tier (in-memory -> store ->
  compute) and is shared bit-identically across processes/machines;
* :mod:`repro.explore` — resumable design-space campaigns: declarative
  sweep specs, the shared chunked dispatch runner, per-group Pareto
  tracking (CLI: ``repro explore``);
* :mod:`repro.io` — JSON serialization and paper-style reports.

The historical flat function surface (``repro.multi_cluster_scheduling``,
``repro.evaluate``, ``repro.optimize_schedule``, ...) is kept as thin
deprecation shims over the same engines; new code should go through
:class:`repro.api.Session`.
"""

import functools as _functools
import warnings as _warnings

from .analysis import (
    ActivityTiming,
    AnalysisContext,
    BufferReport,
    KernelStats,
    MultiClusterResult,
    ResponseTimes,
    SchedulabilityReport,
    buffer_bounds,
    degree_of_schedulability,
    graph_response_time,
    legacy_response_time_analysis,
    response_time_analysis,
)
from .analysis import multi_cluster_scheduling as _multi_cluster_scheduling
from .api import (
    AnalysisBackend,
    EvaluationBackend,
    RunResult,
    Session,
    SimulationBackend,
    SynthesisResult,
    available_backends,
    config_hash,
    get_backend,
    register_backend,
    store_key,
)
from .buses import CanBusSpec, Slot, TTPBusConfig, TTPBusSpec
from .exceptions import (
    AnalysisError,
    ConfigurationError,
    ConvergenceError,
    MappingError,
    ModelError,
    ReproError,
    SchedulingError,
    SimulationError,
    StoreError,
    UnschedulableError,
)
from .explore import ExploreReport, SweepSpec, run_sweep
from .model import (
    Application,
    Architecture,
    ClusterKind,
    Dependency,
    Message,
    MessageRoute,
    OffsetTable,
    PriorityAssignment,
    Process,
    ProcessGraph,
    SystemConfiguration,
)
from .optim import (
    Evaluation,
    ORResult,
    OSResult,
    SAResult,
    hopa_priorities,
    run_straightforward,
    sa_resources,
    sa_schedule,
    straightforward_configuration,
)
from .optim import evaluate as _evaluate
from .optim import optimize_resources as _optimize_resources
from .optim import optimize_schedule as _optimize_schedule
from .schedule import StaticSchedule, static_schedule
from .sim import SimulationTrace, Simulator
from .sim import simulate as _simulate
from .store import ResultStore
from .system import System

__version__ = "1.1.0"


def _deprecated_shim(func, replacement):
    """Wrap a legacy top-level function with a deprecation warning.

    The submodule originals (e.g.
    :func:`repro.analysis.multi_cluster_scheduling`) stay warning-free;
    only the flat ``repro.<name>`` aliases nudge callers to the facade.
    """

    @_functools.wraps(func)
    def wrapper(*args, **kwargs):
        _warnings.warn(
            f"repro.{func.__name__} is deprecated; use {replacement} "
            f"(see repro.api)",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    wrapper.__doc__ = (
        f"Deprecated alias of :func:`{func.__module__}.{func.__name__}`; "
        f"use {replacement} instead.\n\n{func.__doc__ or ''}"
    )
    return wrapper


multi_cluster_scheduling = _deprecated_shim(
    _multi_cluster_scheduling, "Session.evaluate"
)
evaluate = _deprecated_shim(_evaluate, "Session.evaluate")
optimize_schedule = _deprecated_shim(_optimize_schedule, "Session.synthesize")
optimize_resources = _deprecated_shim(
    _optimize_resources, "Session.synthesize(minimize_buffers=True)"
)
simulate = _deprecated_shim(_simulate, "Session.simulate")

__all__ = [
    "ActivityTiming",
    "AnalysisBackend",
    "AnalysisError",
    "Application",
    "Architecture",
    "BufferReport",
    "CanBusSpec",
    "ClusterKind",
    "ConfigurationError",
    "ConvergenceError",
    "Dependency",
    "Evaluation",
    "EvaluationBackend",
    "MappingError",
    "Message",
    "MessageRoute",
    "ModelError",
    "MultiClusterResult",
    "ORResult",
    "OSResult",
    "OffsetTable",
    "PriorityAssignment",
    "Process",
    "ProcessGraph",
    "ExploreReport",
    "ReproError",
    "ResponseTimes",
    "ResultStore",
    "RunResult",
    "SAResult",
    "SchedulabilityReport",
    "SchedulingError",
    "Session",
    "SimulationBackend",
    "SimulationError",
    "SimulationTrace",
    "Simulator",
    "Slot",
    "StaticSchedule",
    "StoreError",
    "SweepSpec",
    "SynthesisResult",
    "System",
    "SystemConfiguration",
    "TTPBusConfig",
    "TTPBusSpec",
    "UnschedulableError",
    "available_backends",
    "buffer_bounds",
    "config_hash",
    "degree_of_schedulability",
    "evaluate",
    "get_backend",
    "graph_response_time",
    "hopa_priorities",
    "multi_cluster_scheduling",
    "optimize_resources",
    "optimize_schedule",
    "register_backend",
    "AnalysisContext",
    "KernelStats",
    "legacy_response_time_analysis",
    "response_time_analysis",
    "run_straightforward",
    "run_sweep",
    "sa_resources",
    "sa_schedule",
    "simulate",
    "static_schedule",
    "store_key",
    "straightforward_configuration",
    "__version__",
]
