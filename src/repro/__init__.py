"""repro — schedulability analysis and synthesis for multi-cluster
distributed embedded systems.

Reproduction of Pop, Eles, Peng, *"Schedulability Analysis and
Optimization for the Synthesis of Multi-Cluster Distributed Embedded
Systems"*, DATE 2003.

Quickstart::

    from repro import (
        Application, Architecture, Message, Process, ProcessGraph, System,
        multi_cluster_scheduling, optimize_schedule,
    )

    graph = ProcessGraph("G1", period=240, deadline=200, processes=[...],
                         messages=[...])
    system = System(Application([graph]),
                    Architecture(tt_nodes=["N1"], et_nodes=["N2"]))
    result = optimize_schedule(system)        # synthesize beta + pi
    print(result.best.schedulable, result.best.total_buffers)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.model` — applications, architectures, configurations;
* :mod:`repro.buses` — TTP/TDMA and CAN protocol substrates;
* :mod:`repro.schedule` — static list scheduling (schedule tables, MEDL);
* :mod:`repro.analysis` — the multi-cluster schedulability and buffer
  analyses (section 4);
* :mod:`repro.optim` — SF/OS/OR heuristics and the SA baselines
  (sections 5–6);
* :mod:`repro.synth` — paper examples and random workload generation;
* :mod:`repro.sim` — discrete-event simulator used for validation;
* :mod:`repro.io` — JSON serialization and paper-style reports.
"""

from .analysis import (
    ActivityTiming,
    BufferReport,
    MultiClusterResult,
    ResponseTimes,
    SchedulabilityReport,
    buffer_bounds,
    degree_of_schedulability,
    graph_response_time,
    multi_cluster_scheduling,
    response_time_analysis,
)
from .buses import CanBusSpec, Slot, TTPBusConfig, TTPBusSpec
from .exceptions import (
    AnalysisError,
    ConfigurationError,
    ConvergenceError,
    MappingError,
    ModelError,
    ReproError,
    SchedulingError,
    SimulationError,
    UnschedulableError,
)
from .model import (
    Application,
    Architecture,
    ClusterKind,
    Dependency,
    Message,
    MessageRoute,
    OffsetTable,
    PriorityAssignment,
    Process,
    ProcessGraph,
    SystemConfiguration,
)
from .optim import (
    Evaluation,
    ORResult,
    OSResult,
    SAResult,
    evaluate,
    hopa_priorities,
    optimize_resources,
    optimize_schedule,
    run_straightforward,
    sa_resources,
    sa_schedule,
    straightforward_configuration,
)
from .schedule import StaticSchedule, static_schedule
from .sim import SimulationTrace, Simulator, simulate
from .system import System

__version__ = "1.0.0"

__all__ = [
    "ActivityTiming",
    "AnalysisError",
    "Application",
    "Architecture",
    "BufferReport",
    "CanBusSpec",
    "ClusterKind",
    "ConfigurationError",
    "ConvergenceError",
    "Dependency",
    "Evaluation",
    "MappingError",
    "Message",
    "MessageRoute",
    "ModelError",
    "MultiClusterResult",
    "ORResult",
    "OSResult",
    "OffsetTable",
    "PriorityAssignment",
    "Process",
    "ProcessGraph",
    "ReproError",
    "ResponseTimes",
    "SAResult",
    "SchedulabilityReport",
    "SchedulingError",
    "SimulationError",
    "SimulationTrace",
    "Simulator",
    "Slot",
    "StaticSchedule",
    "System",
    "SystemConfiguration",
    "TTPBusConfig",
    "TTPBusSpec",
    "UnschedulableError",
    "buffer_bounds",
    "degree_of_schedulability",
    "evaluate",
    "graph_response_time",
    "hopa_priorities",
    "multi_cluster_scheduling",
    "optimize_resources",
    "optimize_schedule",
    "response_time_analysis",
    "run_straightforward",
    "sa_resources",
    "sa_schedule",
    "simulate",
    "static_schedule",
    "straightforward_configuration",
    "__version__",
]
