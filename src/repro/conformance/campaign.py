"""The conformance campaign: fuzz the dominance contract at scale.

A campaign sweeps ``N`` seeded random workloads (the paper's generator,
:func:`repro.synth.workload.generate_workload`, at a size chosen for
throughput) through analysis *and* simulation, classifies every breach
of the dominance contract, shrinks counterexamples to minimal graphs and
persists them as replayable fixtures.  Per seed:

1. generate the workload (the seed also varies utilization and the
   inter-cluster message count, so campaigns cover light and congested
   gateways alike);
2. build the canonical configuration — HOPA priorities plus a TDMA round
   aligned to the graph period (:func:`conformance_configuration`);
3. run the ``"simulation"`` backend through a
   :class:`repro.api.Session` (memoization off — every seed is a fresh
   system evaluated once), which performs the analysis pass, replays
   the schedule tables on the compiled simulation kernel and reports
   both sides in one record;
4. classify (:func:`repro.conformance.classify.classify_run`).

Schedulable-and-converged verdicts are the contract's domain — the
dominance promise of the paper holds in the WCET regime for schedulable
systems — so unschedulable/non-converged seeds count as covered but are
not simulated.  Campaigns dispatch deterministic contiguous seed chunks
(:func:`campaign_chunks`) to warm worker processes and degrade to serial
execution — over the *same* chunks — where pools are unavailable; serial
and ``--workers N`` runs of one spec therefore produce identical outcome
sequences and identical shrunk counterexamples.  Every seed records
per-phase timings, aggregated into ``CampaignReport.profile`` (events/s,
seeds/s; ``repro conform --profile``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..api.session import Session
from ..buses.ttp import Slot, TTPBusConfig
from ..exceptions import ReproError
from ..model.configuration import SystemConfiguration
from ..optim.hopa import hopa_priorities
from ..optim.slots import default_capacities
from ..faults import FaultSpec
from ..synth.workload import WorkloadSpec, generate_workload
from ..system import System
from .classify import (
    ConformanceViolation,
    classify_run,
    determinism_violations,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignReport",
    "CampaignSpec",
    "SeedOutcome",
    "campaign_chunks",
    "conformance_configuration",
    "evaluate_workload",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of one conformance campaign.

    ``campaign`` workloads are generated from seeds ``seed0 ..
    seed0+campaign-1``.  The workload size is deliberately small (a few
    dozen processes): the contract is about *semantics*, which small
    systems with a busy gateway probe far faster than the paper's
    400-process experiments — and a campaign must be able to afford
    thousands of seeds.  Per-seed, the target utilization and the
    gateway message count are varied deterministically so the sweep
    covers both idle and congested gateways.
    """

    campaign: int = 100
    seed0: int = 0
    workers: int = 1
    periods: int = 3
    nodes: int = 2
    processes_per_node: int = 8
    rounds_per_period: int = 10
    utilizations: Tuple[float, ...] = (0.2, 0.35, 0.5)
    gateway_messages: Tuple[int, ...] = (2, 4, 8)
    shrink: bool = True
    fixture_dir: Optional[str] = None
    #: Simulation engine: the compiled kernel (default) or the
    #: pre-kernel event-by-event engine ("legacy", for A/B benchmarks).
    engine: str = "kernel"
    #: Optional fault spec injected into every seed, normalized to the
    #: canonical JSON string of :meth:`repro.faults.FaultSpec.canonical`
    #: (``None`` = fault-free).  A *modeled-only* spec keeps the full
    #: dominance classification (the analysis bounds absorb the modeled
    #: faults, so dominance must still hold); a spec with unmodeled
    #: processes switches the campaign to the determinism check.
    faults: Optional[str] = None
    #: Topology axes (PR 8): cluster count, gateway count and the
    #: seeded route strategy of every generated workload.  The defaults
    #: are the canonical 2-cluster shape, so pre-topology campaigns are
    #: byte-identical.  A non-default ``route_strategy`` seeds per-seed
    #: route overrides and fits the TDMA slots to them, and the
    #: dominance contract is then asserted per hop of every overridden
    #: route (the analysis bounds each gateway's queues individually).
    clusters: int = 2
    gateways: int = 1
    route_strategy: str = "default"

    def __post_init__(self) -> None:
        spec = FaultSpec.coerce(self.faults)
        object.__setattr__(
            self, "faults", None if spec is None else spec.canonical()
        )

    def fault_spec(self) -> Optional[FaultSpec]:
        """The campaign's parsed fault spec (``None`` = fault-free)."""
        return FaultSpec.coerce(self.faults)

    def workload_spec(self, seed: int) -> WorkloadSpec:
        """The deterministic workload recipe of one seed."""
        return WorkloadSpec(
            nodes=self.nodes,
            processes_per_node=self.processes_per_node,
            target_utilization=self.utilizations[seed % len(self.utilizations)],
            gateway_messages=self.gateway_messages[
                (seed // len(self.utilizations)) % len(self.gateway_messages)
            ],
            graph_size_range=(3, max(4, self.processes_per_node)),
            seed=seed,
            clusters=self.clusters,
            gateways=self.gateways,
            route_strategy=self.route_strategy,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (how a campaign travels to a server)."""
        return {
            "campaign": self.campaign,
            "seed0": self.seed0,
            "workers": self.workers,
            "periods": self.periods,
            "nodes": self.nodes,
            "processes_per_node": self.processes_per_node,
            "rounds_per_period": self.rounds_per_period,
            "utilizations": list(self.utilizations),
            "gateway_messages": list(self.gateway_messages),
            "shrink": self.shrink,
            "fixture_dir": self.fixture_dir,
            "engine": self.engine,
            "faults": self.faults,
            "clusters": self.clusters,
            "gateways": self.gateways,
            "route_strategy": self.route_strategy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        kwargs = dict(data)
        if "utilizations" in kwargs:
            kwargs["utilizations"] = tuple(kwargs["utilizations"])
        if "gateway_messages" in kwargs:
            kwargs["gateway_messages"] = tuple(kwargs["gateway_messages"])
        return cls(**kwargs)


@dataclass
class SeedOutcome:
    """What one seed contributed to the campaign."""

    seed: int
    #: ``"ok"`` (dominance held), ``"unschedulable"`` (outside the
    #: contract's domain), ``"error"`` (could not be evaluated) or
    #: ``"violation"``.
    status: str
    violations: List[ConformanceViolation] = field(default_factory=list)
    processes: int = 0
    messages: int = 0
    error: Optional[str] = None
    fixture: Optional[str] = None
    #: Per-phase timings (``generate_s``/``analyze_s``/``simulate_s``)
    #: plus the simulation engine's event counters — the raw material of
    #: the campaign's ``--profile`` report.  Deliberately *not* part of
    #: :meth:`to_dict`: the outcome record is the deterministic artifact
    #: (serial ≡ ``--workers N``); timings never are.
    profile: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible (and deterministic) form — campaign reports."""
        return {
            "seed": self.seed,
            "status": self.status,
            "violations": [v.to_dict() for v in self.violations],
            "processes": self.processes,
            "messages": self.messages,
            "error": self.error,
            "fixture": self.fixture,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SeedOutcome":
        """Rebuild an outcome from its :meth:`to_dict` form.

        The round trip covers the deterministic record; ``profile``
        (timings) deliberately does not travel.
        """
        return cls(
            seed=data["seed"],
            status=data["status"],
            violations=[
                ConformanceViolation.from_dict(v)
                for v in data.get("violations", [])
            ],
            processes=data.get("processes", 0),
            messages=data.get("messages", 0),
            error=data.get("error"),
            fixture=data.get("fixture"),
        )


@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign."""

    spec: CampaignSpec
    outcomes: List[SeedOutcome]
    #: Wall-clock of the whole campaign (dispatch overhead included).
    wall_s: float = 0.0

    @property
    def profile(self) -> Dict[str, float]:
        """Aggregated per-phase timings and throughput of the campaign.

        Sums the per-seed phase timings, adds the simulation engine's
        event totals and derives two throughput figures: simulated
        events per second (events / time spent inside the simulator)
        and seeds per second of campaign wall-clock.
        """
        totals: Dict[str, float] = {
            "generate_s": 0.0,
            "analyze_s": 0.0,
            "simulate_s": 0.0,
            "sim_events": 0.0,
            "sim_compile_s": 0.0,
            "sim_replay_s": 0.0,
        }
        for outcome in self.outcomes:
            for key in totals:
                totals[key] += outcome.profile.get(key, 0.0)
        totals["sim_events"] = int(totals["sim_events"])
        totals["seeds"] = len(self.outcomes)
        totals["wall_s"] = self.wall_s
        totals["events_per_s"] = (
            totals["sim_events"] / totals["sim_replay_s"]
            if totals["sim_replay_s"] > 0
            else 0.0
        )
        totals["seeds_per_s"] = (
            len(self.outcomes) / self.wall_s if self.wall_s > 0 else 0.0
        )
        return totals

    @property
    def violating(self) -> List[SeedOutcome]:
        """Seeds on which the dominance contract broke."""
        return [o for o in self.outcomes if o.status == "violation"]

    @property
    def errored(self) -> List[SeedOutcome]:
        """Seeds that could not be evaluated at all."""
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def counts(self) -> Dict[str, int]:
        """Seed count per status."""
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def clean(self) -> bool:
        """True when no seed violated the contract *and* none errored.

        An errored seed exercised nothing — a campaign whose seeds all
        fail to evaluate must not pass as evidence that the dominance
        contract holds (the same false-clean rule as
        :func:`repro.conformance.fixtures.replay_fixture`).
        """
        return not self.violating and not self.errored

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the CLI's ``--format json`` payload)."""
        return {
            "campaign": self.spec.campaign,
            "seed0": self.spec.seed0,
            "counts": self.counts,
            "clean": self.clean,
            "wall_s": self.wall_s,
            "profile": self.profile,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def conformance_configuration(
    system: System, rounds_per_period: int = 10
) -> SystemConfiguration:
    """Canonical configuration for a generated workload.

    HOPA priorities (the baseline every heuristic starts from) and a
    TDMA round aligned to the common graph period: each TTP slot owner
    gets its minimal legal capacity and an equal share of
    ``period / rounds_per_period`` — the alignment the simulator requires
    (the cyclic schedule and the TDMA grid must tile consistently).
    """
    owners = system.arch.ttp_slot_owners()
    period = min(g.period for g in system.app.graphs.values())
    duration = period / (rounds_per_period * len(owners))
    capacities = default_capacities(system)
    bus = TTPBusConfig(
        [Slot(node, capacities[node], duration) for node in owners]
    )
    return SystemConfiguration(bus=bus, priorities=hopa_priorities(system))


def _campaign_configuration(
    spec: CampaignSpec, system: System, seed: int
) -> Optional[SystemConfiguration]:
    """The seed's configuration, or ``None`` for the canonical default.

    Only a non-default ``route_strategy`` needs an explicit
    configuration: seeded route overrides plus TDMA slots grown to
    carry the relayed payloads (:func:`repro.optim.routing.
    fit_bus_to_routes`).  Returning ``None`` otherwise keeps the
    default-path campaign on the exact pre-topology code path.
    """
    if spec.route_strategy == "default":
        return None
    from ..optim.routing import fit_bus_to_routes
    from ..synth.workload import seeded_routes

    config = conformance_configuration(system, spec.rounds_per_period)
    config.routes.update(seeded_routes(system, spec.workload_spec(seed)))
    config.bus = fit_bus_to_routes(system, config.bus, config.routes)
    return config


def evaluate_workload(
    system: System,
    periods: int = 3,
    rounds_per_period: int = 10,
    config: Optional[SystemConfiguration] = None,
    engine: str = "kernel",
    faults=None,
) -> Tuple[str, List[ConformanceViolation], Optional[str], Dict[str, float]]:
    """Analyse + simulate one workload and classify the outcome.

    Returns ``(status, violations, error, profile)`` with ``status`` as
    in :class:`SeedOutcome` and ``profile`` carrying the per-phase
    timings (plus the simulation engine's event counters).  The
    evaluation goes through a :class:`repro.api.Session` — the surface
    production sweeps use — but with memoization off: every campaign
    seed is a fresh system evaluated exactly once, so paying for result
    snapshots would only cut throughput.

    ``faults`` (FaultSpec / dict / canonical JSON) decides the
    classification regime.  *Modeled-only* specs (CAN errors, slow
    nodes, slow bus) stay inside the dominance contract: the analysis
    runs under the same spec, so its bounds must still dominate the
    faulted replay and :func:`classify_run` applies unchanged.  Specs
    with *unmodeled* processes (execution jitter, babble) are outside
    the contract's bound guarantees; the campaign then checks what the
    contract still promises — seeded determinism — by replaying the
    simulation and comparing observations bit for bit.
    """
    profile: Dict[str, float] = {}
    if config is None:
        config = conformance_configuration(system, rounds_per_period)
    fault_spec = FaultSpec.coerce(faults)
    analysis_options: Dict[str, str] = {}
    sim_options: Dict[str, str] = {}
    if fault_spec is not None:
        sim_options["faults"] = fault_spec.canonical()
        analysis_faults = fault_spec.analysis_spec()
        if not analysis_faults.is_null:
            analysis_options["faults"] = analysis_faults.canonical()
    session = Session(system)
    started = time.perf_counter()
    analysis = session.evaluate(
        config, backend="analysis", memoize=False, **analysis_options
    )
    profile["analyze_s"] = time.perf_counter() - started
    if not analysis.feasible:
        return "error", [], analysis.error, profile
    if not (analysis.schedulable and analysis.converged):
        return "unschedulable", [], None, profile
    # Hand the analysis pass over so the simulation backend does not
    # re-run the Fig. 5 fixed point (analysis_run is cache-neutral — it
    # is in the session's non-key options).
    started = time.perf_counter()
    run = session.evaluate(
        config, backend="simulation", memoize=False, periods=periods,
        analysis_run=analysis, engine=engine, **sim_options,
    )
    profile["simulate_s"] = time.perf_counter() - started
    if not run.feasible:
        return "error", [], run.error, profile
    sim = run.metadata.get("sim", {})
    profile["sim_events"] = sim.get("events", 0)
    profile["sim_compile_s"] = sim.get("compile_s", 0.0)
    profile["sim_replay_s"] = sim.get("replay_s", 0.0)
    if fault_spec is None or fault_spec.modeled_only:
        violations = classify_run(run)
    else:
        # Unmodeled faults: dominance is explicitly scoped out, so a
        # bound excess is not a violation — but a second replay of the
        # same seeded spec must reproduce the first bit for bit.
        started = time.perf_counter()
        second = session.evaluate(
            config, backend="simulation", memoize=False, periods=periods,
            analysis_run=analysis, engine=engine, **sim_options,
        )
        profile["determinism_s"] = time.perf_counter() - started
        if not second.feasible:
            return "error", [], second.error, profile
        violations = determinism_violations(run, second)
    return ("violation" if violations else "ok"), violations, None, profile


def _evaluate_seed(payload: Tuple[CampaignSpec, int]) -> SeedOutcome:
    """One seed end to end."""
    from ..obs import metrics as _obs_metrics
    from ..obs import state as _obs_state
    from ..obs import trace as _obs_trace

    spec, seed = payload
    if _obs_state.enabled:
        with _obs_trace.span("conform.seed", seed=seed):
            outcome = _evaluate_seed_impl(spec, seed)
        _obs_metrics.inc(
            "repro_conform_seeds_total", (("status", outcome.status),)
        )
        return outcome
    return _evaluate_seed_impl(spec, seed)


def _evaluate_seed_impl(spec: CampaignSpec, seed: int) -> SeedOutcome:
    started = time.perf_counter()
    try:
        system = generate_workload(spec.workload_spec(seed))
        config = _campaign_configuration(spec, system, seed)
    except ReproError as exc:
        return SeedOutcome(seed=seed, status="error", error=str(exc))
    generate_s = time.perf_counter() - started
    outcome = SeedOutcome(
        seed=seed,
        status="ok",
        processes=system.app.process_count(),
        messages=system.app.message_count(),
    )
    status, violations, error, profile = evaluate_workload(
        system,
        periods=spec.periods,
        rounds_per_period=spec.rounds_per_period,
        config=config,
        engine=spec.engine,
        faults=spec.faults,
    )
    profile["generate_s"] = generate_s
    outcome.status = status
    outcome.violations = violations
    outcome.error = error
    outcome.profile = profile
    if status == "violation" and spec.fixture_dir is not None:
        outcome.fixture = _pin_counterexample(
            spec, seed, system, violations, config
        )
    return outcome


def _evaluate_chunk(
    payload: Tuple[CampaignSpec, List[int]]
) -> List[SeedOutcome]:
    """Worker entry point: one contiguous chunk of seeds (picklable).

    Chunked dispatch amortizes the pool's per-task IPC over many seeds
    and keeps each worker process warm (imports, allocator, JIT-warmed
    dict/heap internals) across its whole chunk.  Seeds inside a chunk
    run in ascending order, so the concatenation of chunk results is
    the seed order — the property the determinism contract (serial ≡
    ``--workers N``) rests on.
    """
    spec, seeds = payload
    return [_evaluate_seed((spec, seed)) for seed in seeds]


def _pin_counterexample(
    spec: CampaignSpec,
    seed: int,
    system: System,
    violations: List[ConformanceViolation],
    config: Optional[SystemConfiguration] = None,
) -> str:
    """Shrink a violating workload and persist it as a fixture."""
    from .fixtures import save_fixture
    from .shrink import shrink_counterexample

    # A route-strategy campaign observed the violation under seeded
    # route overrides; the shrinker rebuilds a default configuration at
    # every reduction step, which would validate the candidate against
    # the wrong routes.  Pin such counterexamples unshrunk — the fixture
    # carries the exact config (routes and fitted bus), so replay is
    # still bit-exact.
    shrunk = spec.shrink and config is None
    if shrunk:
        # Shrink under the same engine the violation was observed on:
        # an engine-divergence counterexample (--engine legacy A/B runs)
        # must not be re-validated on the other engine.  The same goes
        # for the fault spec — a fault-found violation must persist
        # under the same seeded injection at every reduction step.
        system, violations = shrink_counterexample(
            system,
            violations,
            periods=spec.periods,
            rounds_per_period=spec.rounds_per_period,
            engine=spec.engine,
            faults=spec.faults,
        )
    path = Path(spec.fixture_dir) / f"seed{seed}.json"
    meta = {
        "seed": seed,
        "periods": spec.periods,
        "rounds_per_period": spec.rounds_per_period,
        "shrunk": shrunk,
    }
    fault_spec = spec.fault_spec()
    if fault_spec is not None:
        # The dict form rides in the fixture so replay_fixture can
        # re-inject the exact seeded fault processes the violation
        # was observed under.
        meta["faults"] = fault_spec.to_dict()
    save_fixture(
        path,
        system,
        config if config is not None
        else conformance_configuration(system, spec.rounds_per_period),
        violations,
        meta=meta,
    )
    return str(path)


def campaign_chunks(spec: CampaignSpec) -> List[List[int]]:
    """Deterministic chunk partition of a campaign's seed range.

    Delegates to the shared sweep runner
    (:func:`repro.explore.runner.partition_chunks`): contiguous chunks
    of ``ceil(campaign / (workers * 4))`` seeds, a pure function of the
    spec, never of pool scheduling — so the same spec always produces
    the same chunks and (since results are concatenated in chunk order)
    the same outcome order.  Serial runs use the identical partition:
    the worker count only decides *where* a chunk executes, never
    *what* it contains — that is the pinned tie-break behind the serial
    ≡ parallel determinism contract.
    """
    from ..explore.runner import partition_chunks

    seeds = list(range(spec.seed0, spec.seed0 + spec.campaign))
    return partition_chunks(seeds, spec.workers)


class CampaignInterrupted(ReproError):
    """A campaign was stopped by a trapped signal after finishing its
    in-flight seed chunk.  Carries the partial report over the seeds
    that completed — contiguous from ``seed0``, since chunks stream
    back in seed order — so the caller can both summarize what ran and
    resume with ``--seed0 next_seed`` for the remainder."""

    def __init__(self, report: CampaignReport) -> None:
        done = len(report.outcomes)
        super().__init__(
            f"campaign interrupted: {done}/{report.spec.campaign} seeds done"
        )
        #: The partial campaign over the completed seeds.
        self.report = report
        #: First seed that did not run (== seed0 + completed count).
        self.next_seed = report.spec.seed0 + done


def run_campaign(
    spec: CampaignSpec,
    stop: Optional[threading.Event] = None,
) -> CampaignReport:
    """Run one conformance campaign (see module docstring).

    Dispatch rides the shared chunked runner of :mod:`repro.explore` —
    the conformance campaign is one sweep kind (cell = seed) with its
    own classification and fixture pipeline on top.  ``stop``
    (typically from :func:`repro.explore.runner.trap_signals`) makes
    the campaign interruptible: the in-flight chunk finishes, the rest
    is abandoned, and :class:`CampaignInterrupted` carries the partial
    report plus the seed to resume from.
    """
    from ..explore.runner import RunInterrupted, iter_chunked

    started = time.perf_counter()
    if spec.fixture_dir is not None:
        Path(spec.fixture_dir).mkdir(parents=True, exist_ok=True)
    chunks = [(spec, chunk) for chunk in campaign_chunks(spec)]
    outcomes: List[SeedOutcome] = []
    try:
        for result in iter_chunked(
            chunks, _evaluate_chunk, spec.workers, stop=stop
        ):
            outcomes.extend(result)
    except RunInterrupted as exc:
        outcomes.sort(key=lambda o: o.seed)
        raise CampaignInterrupted(
            CampaignReport(
                spec=spec, outcomes=outcomes,
                wall_s=time.perf_counter() - started,
            )
        ) from exc
    outcomes.sort(key=lambda o: o.seed)  # chunk order is seed order; pin it
    return CampaignReport(
        spec=spec, outcomes=outcomes,
        wall_s=time.perf_counter() - started,
    )
