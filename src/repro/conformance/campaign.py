"""The conformance campaign: fuzz the dominance contract at scale.

A campaign sweeps ``N`` seeded random workloads (the paper's generator,
:func:`repro.synth.workload.generate_workload`, at a size chosen for
throughput) through analysis *and* simulation, classifies every breach
of the dominance contract, shrinks counterexamples to minimal graphs and
persists them as replayable fixtures.  Per seed:

1. generate the workload (the seed also varies utilization and the
   inter-cluster message count, so campaigns cover light and congested
   gateways alike);
2. build the canonical configuration — HOPA priorities plus a TDMA round
   aligned to the graph period (:func:`conformance_configuration`);
3. run the ``"simulation"`` backend through a
   :class:`repro.api.Session` batch (``Session.evaluate_many``), which
   performs the analysis pass, executes the schedule tables in the DES
   engine and reports both sides in one record;
4. classify (:func:`repro.conformance.classify.classify_run`).

Schedulable-and-converged verdicts are the contract's domain — the
dominance promise of the paper holds in the WCET regime for schedulable
systems — so unschedulable/non-converged seeds count as covered but are
not simulated.  Campaigns parallelize across worker processes and
degrade to serial execution where pools are unavailable, mirroring the
Session batch path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..api.session import Session
from ..buses.ttp import Slot, TTPBusConfig
from ..exceptions import ReproError
from ..model.configuration import SystemConfiguration
from ..optim.hopa import hopa_priorities
from ..optim.slots import default_capacities
from ..synth.workload import WorkloadSpec, generate_workload
from ..system import System
from .classify import ConformanceViolation, classify_run

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "SeedOutcome",
    "conformance_configuration",
    "evaluate_workload",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of one conformance campaign.

    ``campaign`` workloads are generated from seeds ``seed0 ..
    seed0+campaign-1``.  The workload size is deliberately small (a few
    dozen processes): the contract is about *semantics*, which small
    systems with a busy gateway probe far faster than the paper's
    400-process experiments — and a campaign must be able to afford
    thousands of seeds.  Per-seed, the target utilization and the
    gateway message count are varied deterministically so the sweep
    covers both idle and congested gateways.
    """

    campaign: int = 100
    seed0: int = 0
    workers: int = 1
    periods: int = 3
    nodes: int = 2
    processes_per_node: int = 8
    rounds_per_period: int = 10
    utilizations: Tuple[float, ...] = (0.2, 0.35, 0.5)
    gateway_messages: Tuple[int, ...] = (2, 4, 8)
    shrink: bool = True
    fixture_dir: Optional[str] = None

    def workload_spec(self, seed: int) -> WorkloadSpec:
        """The deterministic workload recipe of one seed."""
        return WorkloadSpec(
            nodes=self.nodes,
            processes_per_node=self.processes_per_node,
            target_utilization=self.utilizations[seed % len(self.utilizations)],
            gateway_messages=self.gateway_messages[
                (seed // len(self.utilizations)) % len(self.gateway_messages)
            ],
            graph_size_range=(3, max(4, self.processes_per_node)),
            seed=seed,
        )


@dataclass
class SeedOutcome:
    """What one seed contributed to the campaign."""

    seed: int
    #: ``"ok"`` (dominance held), ``"unschedulable"`` (outside the
    #: contract's domain), ``"error"`` (could not be evaluated) or
    #: ``"violation"``.
    status: str
    violations: List[ConformanceViolation] = field(default_factory=list)
    processes: int = 0
    messages: int = 0
    error: Optional[str] = None
    fixture: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (campaign reports)."""
        return {
            "seed": self.seed,
            "status": self.status,
            "violations": [v.to_dict() for v in self.violations],
            "processes": self.processes,
            "messages": self.messages,
            "error": self.error,
            "fixture": self.fixture,
        }


@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign."""

    spec: CampaignSpec
    outcomes: List[SeedOutcome]

    @property
    def violating(self) -> List[SeedOutcome]:
        """Seeds on which the dominance contract broke."""
        return [o for o in self.outcomes if o.status == "violation"]

    @property
    def errored(self) -> List[SeedOutcome]:
        """Seeds that could not be evaluated at all."""
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def counts(self) -> Dict[str, int]:
        """Seed count per status."""
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def clean(self) -> bool:
        """True when no seed violated the contract *and* none errored.

        An errored seed exercised nothing — a campaign whose seeds all
        fail to evaluate must not pass as evidence that the dominance
        contract holds (the same false-clean rule as
        :func:`repro.conformance.fixtures.replay_fixture`).
        """
        return not self.violating and not self.errored

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the CLI's ``--format json`` payload)."""
        return {
            "campaign": self.spec.campaign,
            "seed0": self.spec.seed0,
            "counts": self.counts,
            "clean": self.clean,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def conformance_configuration(
    system: System, rounds_per_period: int = 10
) -> SystemConfiguration:
    """Canonical configuration for a generated workload.

    HOPA priorities (the baseline every heuristic starts from) and a
    TDMA round aligned to the common graph period: each TTP slot owner
    gets its minimal legal capacity and an equal share of
    ``period / rounds_per_period`` — the alignment the simulator requires
    (the cyclic schedule and the TDMA grid must tile consistently).
    """
    owners = system.arch.ttp_slot_owners()
    period = min(g.period for g in system.app.graphs.values())
    duration = period / (rounds_per_period * len(owners))
    capacities = default_capacities(system)
    bus = TTPBusConfig(
        [Slot(node, capacities[node], duration) for node in owners]
    )
    return SystemConfiguration(bus=bus, priorities=hopa_priorities(system))


def evaluate_workload(
    system: System,
    periods: int = 3,
    rounds_per_period: int = 10,
    config: Optional[SystemConfiguration] = None,
) -> Tuple[str, List[ConformanceViolation], Optional[str]]:
    """Analyse + simulate one workload and classify the outcome.

    Returns ``(status, violations, error)`` with ``status`` as in
    :class:`SeedOutcome`.  The evaluation rides the Session batch path
    (``evaluate_many``) so conformance runs exercise exactly the surface
    production sweeps use.
    """
    if config is None:
        config = conformance_configuration(system, rounds_per_period)
    session = Session(system)
    analysis = session.evaluate_many([config], backend="analysis")[0]
    if not analysis.feasible:
        return "error", [], analysis.error
    if not (analysis.schedulable and analysis.converged):
        return "unschedulable", [], None
    # Hand the memoized analysis pass over so the simulation backend does
    # not re-run the Fig. 5 fixed point (analysis_run is cache-neutral —
    # it is in the session's non-key options).
    run = session.evaluate_many(
        [config], backend="simulation", periods=periods,
        analysis_run=analysis,
    )[0]
    if not run.feasible:
        return "error", [], run.error
    violations = classify_run(run)
    return ("violation" if violations else "ok"), violations, None


def _evaluate_seed(payload: Tuple[CampaignSpec, int]) -> SeedOutcome:
    """Worker entry point: one seed end to end (picklable)."""
    spec, seed = payload
    try:
        system = generate_workload(spec.workload_spec(seed))
    except ReproError as exc:
        return SeedOutcome(seed=seed, status="error", error=str(exc))
    outcome = SeedOutcome(
        seed=seed,
        status="ok",
        processes=system.app.process_count(),
        messages=system.app.message_count(),
    )
    status, violations, error = evaluate_workload(
        system,
        periods=spec.periods,
        rounds_per_period=spec.rounds_per_period,
    )
    outcome.status = status
    outcome.violations = violations
    outcome.error = error
    if status == "violation" and spec.fixture_dir is not None:
        outcome.fixture = _pin_counterexample(spec, seed, system, violations)
    return outcome


def _pin_counterexample(
    spec: CampaignSpec,
    seed: int,
    system: System,
    violations: List[ConformanceViolation],
) -> str:
    """Shrink a violating workload and persist it as a fixture."""
    from .fixtures import save_fixture
    from .shrink import shrink_counterexample

    if spec.shrink:
        system, violations = shrink_counterexample(
            system,
            violations,
            periods=spec.periods,
            rounds_per_period=spec.rounds_per_period,
        )
    path = Path(spec.fixture_dir) / f"seed{seed}.json"
    save_fixture(
        path,
        system,
        conformance_configuration(system, spec.rounds_per_period),
        violations,
        meta={
            "seed": seed,
            "periods": spec.periods,
            "rounds_per_period": spec.rounds_per_period,
            "shrunk": spec.shrink,
        },
    )
    return str(path)


def run_campaign(spec: CampaignSpec) -> CampaignReport:
    """Run one conformance campaign (see module docstring)."""
    if spec.fixture_dir is not None:
        Path(spec.fixture_dir).mkdir(parents=True, exist_ok=True)
    seeds = [
        (spec, seed)
        for seed in range(spec.seed0, spec.seed0 + spec.campaign)
    ]
    outcomes: Optional[List[SeedOutcome]] = None
    if spec.workers > 1 and len(seeds) > 1:
        outcomes = _run_pool(seeds, spec.workers)
    if outcomes is None:
        outcomes = [_evaluate_seed(item) for item in seeds]
    return CampaignReport(spec=spec, outcomes=outcomes)


def _run_pool(
    seeds: List[Tuple[CampaignSpec, int]], workers: int
) -> Optional[List[SeedOutcome]]:
    """Fan seeds out to a process pool; ``None`` when pools don't work."""
    import pickle
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunksize = max(1, len(seeds) // (workers * 4))
            return list(pool.map(_evaluate_seed, seeds, chunksize=chunksize))
    except (OSError, PermissionError, pickle.PicklingError,
            BrokenProcessPool) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); "
            "running the campaign serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
