"""Simulator–analysis conformance harness.

The paper's central soundness claim — the holistic schedulability
analysis *dominates* observed behaviour — is enforced here as a
continuously-fuzzed contract between :mod:`repro.analysis` and
:mod:`repro.sim`, built on the shared timing semantics of
:mod:`repro.semantics`:

* :mod:`repro.conformance.classify` — compare one simulation run against
  its analytic bounds and classify every divergence (missing-message,
  deadline, response-bound, jitter-bound, queue-bound);
* :mod:`repro.conformance.campaign` — sweep seeded random workloads
  (:mod:`repro.synth.workload`) through analysis and the compiled
  simulation kernel via :class:`repro.api.Session`, dispatching
  deterministic seed chunks to warm worker processes and reporting
  per-phase timings (``--profile``);
* :mod:`repro.conformance.shrink` — reduce a violating workload to a
  minimal counterexample (drop graphs, trim chains) that still violates;
* :mod:`repro.conformance.fixtures` — persist counterexamples as
  replayable JSON fixtures and replay them (the regression-pinning
  format used by ``tests/fixtures/``).

The CLI front end is ``repro conform --campaign N --workers K``.
"""

from .campaign import (
    CampaignInterrupted,
    CampaignReport,
    CampaignSpec,
    SeedOutcome,
    campaign_chunks,
    conformance_configuration,
    evaluate_workload,
    run_campaign,
)
from .classify import ConformanceViolation, classify_run
from .fixtures import load_fixture, replay_fixture, save_fixture
from .shrink import shrink_counterexample

__all__ = [
    "CampaignInterrupted",
    "CampaignReport",
    "CampaignSpec",
    "ConformanceViolation",
    "SeedOutcome",
    "campaign_chunks",
    "classify_run",
    "conformance_configuration",
    "evaluate_workload",
    "load_fixture",
    "replay_fixture",
    "run_campaign",
    "save_fixture",
    "shrink_counterexample",
]
