"""Counterexample shrinking: reduce a violating workload to a minimal one.

A campaign counterexample is only as useful as it is small — the
seed=1654 divergence needed three graphs and one congested gateway slot,
not the hundreds of processes it was found among.  :func:`shrink_counterexample`
greedily reduces a violating :class:`repro.system.System` while the
dominance violation (re-derived from a fresh canonical configuration at
every step, since priorities and slot sizes depend on the surviving
messages) persists:

1. **drop whole graphs** — repeatedly try removing each process graph;
2. **trim chain tails** — repeatedly try removing sink processes (and
   their incoming arcs) from each surviving graph.

Both passes iterate to a fixed point, so the result is 1-minimal under
these two operations: removing any single graph or sink process makes
the violation disappear.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..exceptions import ReproError
from ..model.application import Application, Dependency, Message, Process, ProcessGraph
from ..system import System
from .classify import ConformanceViolation

__all__ = ["shrink_counterexample"]


def _rebuild(system: System, graphs: List[ProcessGraph]) -> System:
    """A new System with the same platform but a reduced application."""
    return System(
        app=Application(graphs),
        arch=system.arch,
        can_spec=system.can_spec,
        ttp_spec=system.ttp_spec,
        releases={
            name: release
            for name, release in system.releases.items()
            if any(name in g.processes for g in graphs)
        },
    )


def _without_process(graph: ProcessGraph, victim: str) -> Optional[ProcessGraph]:
    """``graph`` minus one sink process; ``None`` when it would empty it."""
    processes = [
        Process(p.name, wcet=p.wcet, node=p.node, deadline=p.deadline)
        for p in graph.processes.values()
        if p.name != victim
    ]
    if not processes:
        return None
    messages = [
        Message(m.name, src=m.src, dst=m.dst, size=m.size)
        for m in graph.messages.values()
        if victim not in (m.src, m.dst)
    ]
    dependencies = [
        Dependency(src=d.src, dst=d.dst)
        for d in graph.dependencies
        if victim not in (d.src, d.dst)
    ]
    return ProcessGraph(
        name=graph.name,
        period=graph.period,
        deadline=graph.deadline,
        processes=processes,
        messages=messages,
        dependencies=dependencies,
    )


def _still_violates(
    system: System, periods: int, rounds_per_period: int,
    engine: str = "kernel", faults=None,
) -> Optional[List[ConformanceViolation]]:
    """Violations of the reduced system, ``None`` when it became clean.

    A reduction that makes the system unschedulable, unanalysable or
    structurally invalid does not preserve the counterexample either.
    ``engine`` must be the engine the campaign observed the violation
    on — shrinking an engine-divergence counterexample under the other
    engine would reject every reduction (or worse, keep the wrong one).
    ``faults`` likewise: a fault-found violation is re-validated under
    the same seeded injection at every step.
    """
    from .campaign import evaluate_workload

    try:
        status, violations, _error, _profile = evaluate_workload(
            system, periods=periods, rounds_per_period=rounds_per_period,
            engine=engine, faults=faults,
        )
    except ReproError:
        return None
    return violations if status == "violation" else None


def shrink_counterexample(
    system: System,
    violations: List[ConformanceViolation],
    periods: int = 3,
    rounds_per_period: int = 10,
    engine: str = "kernel",
    faults=None,
) -> Tuple[System, List[ConformanceViolation]]:
    """Greedily minimize a violating workload (see module docstring).

    Returns the smallest system found and its (re-derived) violations;
    when nothing can be removed the input pair comes back unchanged.
    """
    current = system
    best_violations = violations

    # Pass 1: drop whole graphs, to a fixed point.
    reduced = True
    while reduced:
        reduced = False
        graphs = list(current.app.graphs.values())
        if len(graphs) <= 1:
            break
        for index in range(len(graphs)):
            candidate_graphs = graphs[:index] + graphs[index + 1:]
            try:
                candidate = _rebuild(current, candidate_graphs)
            except ReproError:
                continue
            found = _still_violates(
                candidate, periods, rounds_per_period, engine, faults
            )
            if found is not None:
                current = candidate
                best_violations = found
                reduced = True
                break

    # Pass 2: trim sink processes off the surviving graphs.
    reduced = True
    while reduced:
        reduced = False
        for graph in list(current.app.graphs.values()):
            for sink in sorted(graph.sinks()):
                trimmed = _without_process(graph, sink)
                if trimmed is None:
                    continue
                candidate_graphs = [
                    trimmed if g.name == graph.name else g
                    for g in current.app.graphs.values()
                ]
                try:
                    candidate = _rebuild(current, candidate_graphs)
                except ReproError:
                    continue
                found = _still_violates(
                    candidate, periods, rounds_per_period, engine, faults
                )
                if found is not None:
                    current = candidate
                    best_violations = found
                    reduced = True
                    break
            if reduced:
                break

    return current, best_violations
