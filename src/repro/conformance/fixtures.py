"""Replayable conformance fixtures.

A fixture pins one (workload, configuration) pair together with the
violations observed when it was captured, in the plain-JSON formats of
:mod:`repro.io.serialize` — diffable, editable, and replayable years
later without the generator that produced it.  Two uses:

* campaign counterexamples (shrunk before persisting) uploaded as CI
  artifacts;
* permanent regression pins under ``tests/fixtures/`` (e.g. the
  seed=1654 gateway divergence), asserting that a once-broken scenario
  stays fixed — verdict *and* dispatch times.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..io.serialize import (
    config_from_dict,
    config_to_dict,
    system_from_dict,
    system_to_dict,
)
from ..model.configuration import SystemConfiguration
from ..system import System
from .classify import ConformanceViolation, classify_run

__all__ = ["Fixture", "load_fixture", "replay_fixture", "save_fixture"]

_FORMAT = "repro-conformance-fixture-v1"


@dataclass
class Fixture:
    """One loaded conformance fixture."""

    system: System
    config: SystemConfiguration
    #: Violations observed when the fixture was captured (empty for a
    #: regression pin of a *fixed* scenario).
    expected_violations: List[ConformanceViolation] = field(
        default_factory=list
    )
    meta: Dict[str, Any] = field(default_factory=dict)


def save_fixture(
    path: Union[str, Path],
    system: System,
    config: SystemConfiguration,
    violations: List[ConformanceViolation],
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Persist a fixture (see module docstring)."""
    payload = {
        "format": _FORMAT,
        "system": system_to_dict(system),
        "config": config_to_dict(config),
        "violations": [v.to_dict() for v in violations],
        "meta": dict(meta or {}),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_fixture(path: Union[str, Path]) -> Fixture:
    """Load a fixture written by :func:`save_fixture`."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"{path}: not a conformance fixture (format "
            f"{data.get('format')!r})"
        )
    return Fixture(
        system=system_from_dict(data["system"]),
        config=config_from_dict(data["config"]),
        expected_violations=[
            ConformanceViolation.from_dict(v) for v in data["violations"]
        ],
        meta=dict(data.get("meta", {})),
    )


def replay_fixture(
    path: Union[str, Path], periods: Optional[int] = None
) -> Tuple["Fixture", Any, List[ConformanceViolation]]:
    """Re-run a fixture end to end.

    Returns ``(fixture, run, violations)``: the loaded fixture, the
    fresh ``"simulation"`` :class:`repro.api.result.RunResult`, and the
    violations classified *now* — to be compared against
    ``fixture.expected_violations`` (a regression pin expects an empty
    list).  ``periods`` defaults to the value recorded in the fixture's
    metadata (falling back to 3).

    Raises :class:`repro.exceptions.ReproError` when the fixture cannot
    even be evaluated (analysis or simulation error): an infeasible
    replay exercised nothing, so returning the empty violation list a
    passing regression pin expects would be a silent false-clean.

    A fixture captured under fault injection records the spec in
    ``meta["faults"]``; the replay re-injects exactly those seeded fault
    processes, so fault-found counterexamples reproduce bit for bit.
    """
    from ..api.session import Session
    from ..exceptions import ReproError

    fixture = load_fixture(path)
    if periods is None:
        periods = int(fixture.meta.get("periods", 3))
    session = Session(fixture.system)
    faults = fixture.meta.get("faults")
    run = session.simulate(fixture.config, periods=periods, faults=faults)
    if not run.feasible:
        raise ReproError(
            f"conformance fixture {path} no longer evaluates: {run.error}"
        )
    from ..faults import FaultSpec

    fault_spec = FaultSpec.coerce(faults)
    if fault_spec is not None and not fault_spec.modeled_only:
        # Unmodeled-fault fixture (a pinned nondeterminism scenario):
        # re-check the same property the campaign checked — two
        # replays of the seeded spec must agree bit for bit.  The
        # second run bypasses the memo tiers, otherwise it would be
        # the cached first run comparing equal to itself.
        from .classify import determinism_violations

        second = session.simulate(
            fixture.config, periods=periods, faults=faults, memoize=False
        )
        if not second.feasible:
            raise ReproError(
                f"conformance fixture {path} no longer evaluates: "
                f"{second.error}"
            )
        return fixture, run, determinism_violations(run, second)
    return fixture, run, classify_run(run)
