"""Violation classification: one simulation run vs. its analytic bounds.

:func:`classify_run` inspects a ``"simulation"`` backend
:class:`repro.api.result.RunResult` — which carries both the analytic
verdict (timing table, graph bounds, buffer bounds) and the simulated
observations (in ``metadata``) — and emits one
:class:`ConformanceViolation` per dominance breach:

* ``missing-message`` — a TT process was dispatched before an input
  message arrived (the simulator's :class:`ScheduleViolation`, full
  causal context preserved in ``detail``);
* ``deadline`` — an observed graph end-to-end response exceeded its
  analytic bound;
* ``response-bound`` — an observed process response exceeded its bound;
* ``jitter-bound`` — an observed message delivery latency exceeded the
  analytic worst-case arrival;
* ``queue-bound`` — an observed queue peak exceeded its buffer bound.

Everything is computed from the serialized surface of the result (no
live analysis payload needed), so classification works identically on
fresh runs, memoized runs and fixture replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "ConformanceViolation",
    "classify_run",
    "determinism_violations",
    "TOLERANCE",
]

#: Slack applied to every observed-vs-bound comparison; mirrors the
#: tolerance of the property-based dominance test.
TOLERANCE = 1e-6

#: Classification kinds, in reporting order.  ``nondeterminism`` is the
#: one kind not produced by :func:`classify_run`: it is emitted by the
#: fault-aware campaign when two replays of one seeded *unmodeled*
#: fault spec disagree — under unmodeled faults the dominance checks
#: are scoped out of the contract, but determinism and replayability
#: never are.
KINDS = (
    "missing-message",
    "deadline",
    "response-bound",
    "jitter-bound",
    "queue-bound",
    "nondeterminism",
)


@dataclass(frozen=True)
class ConformanceViolation:
    """One classified breach of the dominance contract."""

    kind: str
    activity: str
    observed: float
    bound: float
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def excess(self) -> float:
        """How far past the bound the observation landed."""
        return self.observed - self.bound

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (campaign reports, fixtures).

        Non-finite bounds (a message that never arrived) map to ``None``
        so ``json.dumps`` never emits the non-RFC ``Infinity`` token —
        the same convention as ``repro.api.result.timing_table``.
        """
        import math

        return {
            "kind": self.kind,
            "activity": self.activity,
            "observed": self.observed,
            "bound": self.bound if math.isfinite(self.bound) else None,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConformanceViolation":
        """Rebuild from :meth:`to_dict` output."""
        bound = data["bound"]
        return cls(
            kind=data["kind"],
            activity=data["activity"],
            observed=data["observed"],
            bound=float("inf") if bound is None else bound,
            detail=dict(data.get("detail", {})),
        )


def _delivery_bound(timing: Dict[str, Dict[str, Any]], name: str) -> Optional[float]:
    """Analytic worst-case delivery latency of message ``name``.

    A message with several timing rows (ET->TT has a source ``can`` and
    a ``ttp`` row; a multi-hop transit message additionally ends on a
    delivering ``can`` leg) is bounded by its *last* leg.  ``worst_end``
    accumulates along the route, so the delivering leg is simply the
    row with the largest ``worst_end`` — no per-shape precedence list.
    """
    ends = [
        timing[f"{kind}:{name}"]["worst_end"]
        for kind in ("ttp", "can", "tt")
        if f"{kind}:{name}" in timing
    ]
    return max(ends) if ends else None


def classify_run(run) -> List[ConformanceViolation]:
    """Classify every dominance violation of one simulation run.

    ``run`` must come from the ``"simulation"`` backend (its ``metadata``
    carries the observations).  Returns an empty list when the analysis
    dominates the simulation — the conformance contract.
    """
    violations: List[ConformanceViolation] = []
    meta = run.metadata

    for detail in meta.get("violation_details", ()):
        arrival = detail.get("message_arrival")
        violations.append(
            ConformanceViolation(
                kind="missing-message",
                activity=detail["process"],
                observed=detail["dispatch_time"],
                bound=arrival if arrival is not None else float("inf"),
                detail=dict(detail),
            )
        )

    for graph, observed in meta.get("observed_graph_response", {}).items():
        bound = run.graph_responses.get(graph)
        if bound is not None and observed > bound + TOLERANCE:
            violations.append(
                ConformanceViolation(
                    kind="deadline",
                    activity=graph,
                    observed=observed,
                    bound=bound,
                )
            )

    for name, observed in meta.get("observed_process_response", {}).items():
        row = run.timing.get(f"process:{name}")
        if row is None:
            continue
        bound = row["worst_end"]
        if bound is not None and observed > bound + TOLERANCE:
            violations.append(
                ConformanceViolation(
                    kind="response-bound",
                    activity=name,
                    observed=observed,
                    bound=bound,
                )
            )

    for name, observed in meta.get("observed_message_latency", {}).items():
        bound = _delivery_bound(run.timing, name)
        if bound is not None and observed > bound + TOLERANCE:
            violations.append(
                ConformanceViolation(
                    kind="jitter-bound",
                    activity=name,
                    observed=observed,
                    bound=bound,
                )
            )

    if run.buffers is not None:
        peaks = meta.get("observed_queue_peak", {})
        # Gateway queue bounds are *sums* over the per-gateway queues on
        # multi-gateway topologies (BufferReport aggregates); compare
        # against the matching sum of observed peaks — per-queue
        # dominance implies the aggregate, so a sum violation is always
        # a real one.  Single-gateway peaks use the bare queue name and
        # aggregate to themselves.
        def _gateway_peak(queue: str) -> float:
            return sum(
                peak for name, peak in peaks.items()
                if name == queue or name.startswith(queue + "@")
            )

        bounds = {"Out_CAN": run.buffers.out_can, "Out_TTP": run.buffers.out_ttp}
        bounds.update(
            (f"Out_{node}", bound)
            for node, bound in run.buffers.out_node.items()
        )
        for queue, bound in bounds.items():
            if queue in ("Out_CAN", "Out_TTP"):
                observed = _gateway_peak(queue)
            else:
                observed = peaks.get(queue, 0.0)
            if observed > bound + TOLERANCE:
                violations.append(
                    ConformanceViolation(
                        kind="queue-bound",
                        activity=queue,
                        observed=observed,
                        bound=bound,
                    )
                )

    violations.sort(key=lambda v: (KINDS.index(v.kind), v.activity))
    return violations


#: Metadata fields two replays of one seeded run must agree on bit for
#: bit — the observable surface of the determinism contract.
_DETERMINISM_FIELDS = (
    "observed_graph_response",
    "observed_process_response",
    "observed_message_latency",
    "observed_queue_peak",
    "violation_details",
    "completed_instances",
    "fault_injection",
)

def determinism_violations(first, second) -> List[ConformanceViolation]:
    """Compare two independent replays of one seeded run bit for bit.

    The fault-aware campaign's check for *unmodeled* fault specs
    (execution jitter, babbling idiot): the dominance bounds are scoped
    out of the contract there, but two runs of the same seed must still
    observe identical responses, latencies, queue peaks and injection
    counters — determinism is what makes a fault counterexample
    replayable at all.  Returns one ``nondeterminism`` violation per
    mismatched field (empty when the replays agree).
    """
    violations: List[ConformanceViolation] = []
    for name in _DETERMINISM_FIELDS:
        a = first.metadata.get(name)
        b = second.metadata.get(name)
        if a != b:
            violations.append(
                ConformanceViolation(
                    kind="nondeterminism",
                    activity=name,
                    observed=0.0,
                    bound=0.0,
                    detail={"first": a, "second": b},
                )
            )
    return violations
