"""Declarative fault specifications: seeded, deterministic, replayable.

A :class:`FaultSpec` is the sibling of :class:`repro.explore.SweepSpec`
for the *fault axis*: one JSON-round-trippable value describing every
fault process injected into a simulation run (and, for the modeled
subset, into the analysis).  The processes are all seeded and
deterministic — the same spec replays the same fault trace on either
simulation engine, which is what makes fault counterexamples shrinkable
and pinnable as fixtures.

Fault processes
---------------

Modeled (the analysis accounts for them, so the dominance contract must
*still hold* under injection):

* ``can_error_interval`` / ``can_error_overhead`` — a periodic CAN
  bus-error process: at most one frame corruption every ``interval``
  time units, each costing ``overhead`` of error signalling before the
  corrupted frame is retransmitted.  The analysis side is the classical
  retransmission term (:func:`repro.analysis.can_analysis.can_error_term`).
* ``node_slow`` — per-ET-node degradation factors (>= 1): the *limplock*
  scenario, a CPU that is slow rather than dead.  The analysis runs on
  a derated system (WCETs scaled by the factor).
* ``bus_slow`` — a degraded CAN bus (all frame times scaled).

Unmodeled (the dominance contract is *explicitly scoped out*; the
conformance harness still checks determinism and replayability):

* ``exec_jitter`` — sub-WCET execution-time jitter: every job runs for
  ``wcet * (1 - exec_jitter * u)`` with ``u`` a seeded per-job uniform.
* ``babble_period`` / ``babble_size`` / ``babble_priority`` — a
  babbling-idiot node injecting periodic background frames onto the CAN
  bus (gateway-overload scenario).  Phantom frames occupy the bus and
  win arbitration at ``babble_priority`` but are never delivered.

The *null* spec (no fault process active) is behaviourally — and, by
session-level contract, bit-for-bit — identical to not passing a spec
at all: null specs are dropped before any cache or store key is formed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Union

from ..exceptions import ConfigurationError

__all__ = ["FAULT_FORMAT", "FaultSpec", "stable_unit"]

#: Format tag of serialized fault specs.
FAULT_FORMAT = "repro-faultspec-v1"


def stable_unit(*parts: Any) -> float:
    """A deterministic uniform in ``[0, 1)`` from hashed identifiers.

    Process-stable (unlike ``hash()``, which is salted per interpreter):
    both simulation engines, every worker process and every replay see
    the same value for the same ``parts`` — the property the
    determinism and parity contracts rest on.
    """
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault scenario (see module docstring)."""

    seed: int = 0
    #: Minimum spacing of CAN bus errors (None = no error process).
    can_error_interval: Optional[float] = None
    #: Error-signalling cost per corruption, before retransmission.
    can_error_overhead: float = 0.0
    #: ET node name -> degradation factor (>= 1.0); the limplock knob.
    node_slow: Mapping[str, float] = field(default_factory=dict)
    #: CAN speed degradation factor (>= 1.0) applied to all frame times.
    bus_slow: float = 1.0
    #: Sub-WCET execution jitter fraction in [0, 1).
    exec_jitter: float = 0.0
    #: Period of babbling-idiot background frames (None = off).
    babble_period: Optional[float] = None
    #: Payload bytes of each babble frame.
    babble_size: int = 8
    #: Arbitration priority of babble frames (lower wins; -1 beats every
    #: legitimately assigned priority — the true babbling idiot).
    babble_priority: int = -1
    #: ET cluster whose CAN bus the idiot babbles on (None = the first
    #: ET cluster in sorted order, which on the canonical two-cluster
    #: topology is *the* CAN bus — the pre-topology behaviour).
    babble_bus: Optional[str] = None

    def __post_init__(self) -> None:
        if self.can_error_interval is not None:
            if self.can_error_interval <= 0:
                raise ConfigurationError(
                    "can_error_interval must be positive"
                )
            if not 0.0 <= self.can_error_overhead < self.can_error_interval:
                raise ConfigurationError(
                    "can_error_overhead must be non-negative and smaller "
                    "than can_error_interval (error recovery must finish "
                    "before the next error can occur)"
                )
        elif self.can_error_overhead:
            raise ConfigurationError(
                "can_error_overhead without can_error_interval"
            )
        for node, factor in dict(self.node_slow).items():
            if not isinstance(node, str):
                raise ConfigurationError(
                    f"node_slow keys must be node names, got {node!r}"
                )
            if not factor >= 1.0:
                raise ConfigurationError(
                    f"node_slow[{node!r}] must be >= 1.0 (got {factor})"
                )
        if not self.bus_slow >= 1.0:
            raise ConfigurationError("bus_slow must be >= 1.0")
        if not 0.0 <= self.exec_jitter < 1.0:
            raise ConfigurationError("exec_jitter must be in [0, 1)")
        if self.babble_period is not None and self.babble_period <= 0:
            raise ConfigurationError("babble_period must be positive")
        if self.babble_size < 1:
            raise ConfigurationError("babble_size must be >= 1 byte")
        if self.babble_bus is not None and self.babble_period is None:
            raise ConfigurationError(
                "babble_bus without babble_period (no babble process)"
            )

    # -- classification ------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """No fault process is active (seed alone activates nothing)."""
        return (
            self.can_error_interval is None
            and not self.node_slow
            and self.bus_slow == 1.0
            and self.exec_jitter == 0.0
            and self.babble_period is None
        )

    @property
    def modeled_only(self) -> bool:
        """Every active fault process is covered by the analysis.

        True means the dominance contract is *in force* under this spec
        (the conformance harness enforces it); False scopes the
        contract out and downgrades conformance to determinism checks.
        """
        return self.exec_jitter == 0.0 and self.babble_period is None

    @property
    def affects_analysis(self) -> bool:
        """The analysis side must be derated / extended for this spec."""
        return (
            self.can_error_interval is not None
            or bool(self.node_slow)
            or self.bus_slow != 1.0
        )

    def analysis_spec(self) -> "FaultSpec":
        """The modeled projection: what the analysis must account for.

        Unmodeled processes (exec jitter, babble) are sub-WCET or
        bus-load-only phenomena the WCET-regime analysis does not see;
        two specs with the same projection share one analysis record.
        """
        return replace(
            self, exec_jitter=0.0, babble_period=None,
            babble_size=FaultSpec.babble_size,
            babble_priority=FaultSpec.babble_priority,
            babble_bus=None,
        )

    # -- derating (the modeled analysis-side view) ---------------------------

    def derate_system(self, system):
        """The analysis view of a degraded platform: a derated System.

        ``node_slow`` scales the WCET of every process mapped on the
        slowed ET node; ``bus_slow`` scales the CAN bit time (and the
        fixed frame time, when set).  TT-side timing is untouched — the
        static schedule's slot grid is a clock domain of its own.  The
        returned system is a fresh object; the caller's is never
        mutated.
        """
        if not self.node_slow and self.bus_slow == 1.0:
            return system
        from ..io.serialize import system_from_dict, system_to_dict

        self.validate_nodes(system)
        data = system_to_dict(system)
        if self.node_slow:
            for graph in data["application"]["graphs"]:
                for proc in graph["processes"]:
                    factor = self.node_slow.get(proc["node"])
                    if factor is not None:
                        proc["wcet"] = proc["wcet"] * factor
        if self.bus_slow != 1.0:
            can = data["can_spec"]
            can["bit_time"] = can["bit_time"] * self.bus_slow
            if can.get("fixed_frame_time") is not None:
                can["fixed_frame_time"] = (
                    can["fixed_frame_time"] * self.bus_slow
                )
        return system_from_dict(data)

    def validate_nodes(self, system) -> None:
        """Reject slow-node entries that name no (pure) ET node.

        TT processes run in statically scheduled slots — a slowed TT
        node would break the schedule, not degrade it — and the gateway
        transfer budget is a bus-protocol constant, so only the ET
        application nodes are derateable.
        """
        if not self.node_slow:
            return
        et_nodes = set(system.arch.et_node_names())
        gateways = set(system.arch.gateways())
        for node in self.node_slow:
            if node not in et_nodes or node in gateways:
                raise ConfigurationError(
                    f"node_slow names {node!r}, which is not a "
                    "non-gateway ET node (only event-triggered "
                    "application nodes can be derated)"
                )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Minimal JSON form: only non-default fields travel.

        Minimality is a keying property, not a convenience — two specs
        spelling the same faults must canonicalize to the same string.
        """
        out: Dict[str, Any] = {}
        if self.seed != 0:
            out["seed"] = self.seed
        if self.can_error_interval is not None:
            out["can_error_interval"] = self.can_error_interval
            if self.can_error_overhead:
                out["can_error_overhead"] = self.can_error_overhead
        if self.node_slow:
            out["node_slow"] = {
                node: self.node_slow[node] for node in sorted(self.node_slow)
            }
        if self.bus_slow != 1.0:
            out["bus_slow"] = self.bus_slow
        if self.exec_jitter:
            out["exec_jitter"] = self.exec_jitter
        if self.babble_period is not None:
            out["babble_period"] = self.babble_period
            if self.babble_size != 8:
                out["babble_size"] = self.babble_size
            if self.babble_priority != -1:
                out["babble_priority"] = self.babble_priority
            if self.babble_bus is not None:
                out["babble_bus"] = self.babble_bus
        return out

    def canonical(self) -> str:
        """The canonical string folded into cache/store keys."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-spec fields {sorted(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs = dict(data)
        if "node_slow" in kwargs:
            kwargs["node_slow"] = dict(kwargs["node_slow"])
        return cls(**kwargs)

    @classmethod
    def coerce(
        cls, value: Union[None, str, Mapping[str, Any], "FaultSpec"]
    ) -> Optional["FaultSpec"]:
        """A FaultSpec from any accepted spelling; None for null specs.

        Accepts ``None``, an existing spec, a dict, or the canonical
        JSON string (the form the session normalizes options to).  A
        spec with no active fault process normalizes to ``None`` — the
        null-fault bit-identity contract.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            spec = value
        elif isinstance(value, str):
            try:
                data = json.loads(value)
            except ValueError as exc:
                raise ConfigurationError(
                    f"faults string is not valid JSON: {value!r}"
                ) from exc
            if not isinstance(data, dict):
                raise ConfigurationError(
                    "faults JSON must be an object of FaultSpec fields"
                )
            spec = cls.from_dict(data)
        elif isinstance(value, Mapping):
            spec = cls.from_dict(value)
        else:
            raise ConfigurationError(
                f"cannot interpret {type(value).__name__} as a FaultSpec"
            )
        return None if spec.is_null else spec
