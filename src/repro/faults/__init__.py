"""Fault injection & degraded-mode evaluation.

Public surface:

* :class:`FaultSpec` — declarative, JSON-round-trippable description of
  the fault processes of one run (see :mod:`repro.faults.spec` for the
  modeled/unmodeled split and the dominance-contract scoping rule).
* :class:`FaultRuntime` — the seeded per-run state both simulation
  engines consume.
* :func:`faulty_execution` — composes sub-WCET execution jitter and
  slow-node factors onto an execution-time model.
* :func:`stable_unit` — the process-stable uniform hash all fault
  processes draw from.
"""

from .inject import FaultRuntime
from .spec import FAULT_FORMAT, FaultSpec, stable_unit

__all__ = [
    "FAULT_FORMAT",
    "FaultRuntime",
    "FaultSpec",
    "faulty_execution",
    "stable_unit",
]


def faulty_execution(spec, system, execution):
    """The composite execution-time model under ``spec``.

    Wraps the caller's ``execution(name, instance)`` model (or the WCET
    table when ``execution`` is None) with the sub-WCET jitter draw
    ``base * (1 - exec_jitter * u)``.  Slow-node factors are *not*
    applied here — they model a slow CPU, not a longer job, and the
    engines multiply them into remaining execution demand at dispatch
    so preemption accounting stays exact.

    Returns ``execution`` unchanged when the spec draws no jitter, so a
    null wrap costs nothing and perturbs no fault-free code path.
    """
    if spec is None or spec.exec_jitter == 0.0:
        return execution
    jitter = spec.exec_jitter
    seed = spec.seed
    app = system.app

    if execution is None:
        def model(name, instance):
            return app.process(name).wcet * (
                1.0 - jitter * stable_unit(seed, "exec", name, instance)
            )
    else:
        def model(name, instance):
            return execution(name, instance) * (
                1.0 - jitter * stable_unit(seed, "exec", name, instance)
            )
    return model
