"""Runtime fault state shared by both simulation engines.

A :class:`FaultRuntime` is instantiated once per simulation run from a
:class:`~repro.faults.spec.FaultSpec` and consumed *sequentially* by the
engine: the CAN bus is a single serial resource, so transmissions start
in one global order and the error-process pointer advances
monotonically.  Because both engines serialize bus activity the same
way, sharing this one object (and the seeded ``stable_unit`` stream)
gives bit-for-bit fault parity between the compiled kernel and the
legacy event simulator.
"""

from __future__ import annotations

from typing import List, Optional

from ..exceptions import ConfigurationError
from .spec import FaultSpec, stable_unit

__all__ = ["FaultRuntime"]


class FaultRuntime:
    """Mutable per-run fault processes derived from a :class:`FaultSpec`.

    Holds the CAN error-instant pointer, pre-derived per-node speed
    factors, the babble frame geometry, and injection counters that the
    engines surface as run metadata.
    """

    __slots__ = (
        "spec",
        "bus_factor",
        "node_factor",
        "babble_frame_time",
        "can_errors",
        "babble_frames",
        "_err_interval",
        "_err_overhead",
        "_next_err",
    )

    def __init__(self, spec: FaultSpec, system) -> None:
        self.spec = spec
        self.bus_factor = spec.bus_slow
        self.node_factor = dict(spec.node_slow)
        if self.node_factor:
            spec.validate_nodes(system)
        self.can_errors = 0
        self.babble_frames = 0
        self._err_interval: Optional[float] = spec.can_error_interval
        self._err_overhead = spec.can_error_overhead
        if self._err_interval is not None:
            # Seeded phase in [0, interval): the first error instant.
            # Full-entropy hash phase — never exactly on a schedule grid
            # point, so engine tie-break rules are never exercised by
            # the error process itself.
            self._next_err = (
                stable_unit(spec.seed, "can-error") * self._err_interval
            )
        else:
            self._next_err = 0.0
        if spec.babble_period is not None:
            self.babble_frame_time = (
                system.can_spec.frame_time(spec.babble_size) * self.bus_factor
            )
        else:
            self.babble_frame_time = 0.0
        if self._err_interval is not None:
            # A frame whose wire time exceeds ``interval - overhead`` is
            # corrupted by *every* retransmission attempt and never
            # completes — the simulated bus would livelock.  The
            # analysis side diverges on such specs (unschedulable); the
            # simulator must reject them up front instead of hanging.
            wire_times = [
                system.can_frame_time(name) * self.bus_factor
                for name in system.can_messages()
            ]
            wire_times.append(self.babble_frame_time)
            longest = max(wire_times)
            budget = self._err_interval - self._err_overhead
            if longest > budget:
                raise ConfigurationError(
                    "CAN error process denser than the longest frame: "
                    f"wire time {longest:.6g} exceeds interval - overhead "
                    f"= {budget:.6g}; no such frame could ever complete"
                )

    # -- per-node degradation ----------------------------------------------

    def speed(self, node: str) -> float:
        """Execution-time multiplier of one node (1.0 = healthy)."""
        return self.node_factor.get(node, 1.0)

    # -- the CAN error process ----------------------------------------------

    def can_span(self, start: float, duration: float) -> float:
        """Wire time of a frame starting at ``start``, with errors.

        The error process corrupts the frame being transmitted at each
        error instant; the controller signals the error (``overhead``)
        and immediately retransmits.  Error instants that fall on an
        idle bus are consumed without effect.  Returns the total bus
        occupancy (>= ``duration``); ``overhead < interval`` guarantees
        each retransmission outruns the next error, so this terminates.
        """
        if self._err_interval is None:
            return duration
        while self._next_err < start:
            self._next_err += self._err_interval  # idle-bus error
        t = start
        while self._next_err < t + duration:
            t = self._next_err + self._err_overhead
            self._next_err += self._err_interval
            self.can_errors += 1
        return (t + duration) - start

    # -- the babbling idiot --------------------------------------------------

    def babble_times(self, horizon: float) -> List[float]:
        """Queueing instants of all babble frames up to ``horizon``.

        Seeded phase in ``(0, period)``: a full-entropy hash offset, so
        babble instants never coincide exactly with schedule grid
        points and cross-engine tie-breaking stays untested territory.
        """
        period = self.spec.babble_period
        if period is None:
            return []
        t = stable_unit(self.spec.seed, "babble") * period
        out = []
        while t <= horizon:
            out.append(t)
            t += period
        return out

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Injection counters for run metadata."""
        return {
            "can_errors": self.can_errors,
            "babble_frames": self.babble_frames,
        }
