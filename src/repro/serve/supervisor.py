"""Supervision of the worker fleet: liveness, leases, retries, hedging.

The :class:`Supervisor` sits between the service's dispatch queue and
the transports of :mod:`repro.serve.workers`.  The service hands it
units; the supervisor decides *where* and *when* each unit runs and
guarantees **at-least-once dispatch with exactly-once delivery**:

* **Leases.**  Every dispatched attempt carries a deadline.  Local
  attempts are backed by process liveness (a SIGKILLed worker is
  detected on the next tick); remote attempts are kept alive by
  heartbeats (``POST /worker/heartbeat`` while the worker computes) —
  a worker that stops beating past its lease (killed, partitioned, or
  SIGSTOPped) forfeits the unit.
* **Retries.**  A failed or expired attempt re-dispatches with bounded
  exponential backoff, preferring a worker that has not yet touched the
  unit.  A unit that keeps failing resolves as an error after
  ``unit_retries`` transport failures — it never spins forever.
* **Hedging** (limplock mitigation).  A unit whose only live attempt
  has run far past the observed latency of its kind — on a worker that
  is still *alive* (a dead worker is a retry, not a hedge) — gets a
  speculative second attempt on an idle worker.  First result wins;
  late results are dropped (``hedge_wasted``) before they reach the
  service, so delivery — counters, store writes, client results —
  stays exactly-once per key even when hedges race.
* **Journal.**  :class:`UnitJournal` records every unit at enqueue and
  every delivery, append-only with fsync, in the store directory.  A
  killed server restarts, replays the pending set, and re-dispatches
  in-flight work — no cell of a sweep is lost to a crash.
* **Degradation.**  With no live workers at all (``--workers 0`` and
  an empty remote fleet) units execute inline on the supervisor
  thread: a fleet is an optimization, never a requirement.

The supervisor never interprets results; it delivers the first
terminal outcome of each unit to the service's completion callback and
drops the rest.  Results are therefore bit-identical to a failure-free
run under any kill/slow/partition schedule — the standing invariant
the chaos suite enforces.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..obs import state as _obs_state
from ..obs import trace as _obs_trace
from .workers import LocalFleet, run_unit

__all__ = ["Supervisor", "SupervisorConfig", "UnitJournal"]

#: Format tag of the pending-unit journal (first line of the file).
JOURNAL_FORMAT = "serve-journal-v1"


# -- the crash-safe pending-unit journal -------------------------------------


class UnitJournal:
    """Append-only record of units enqueued and delivered.

    One JSON object per line: a header line stamps the format, then
    ``{"op": "unit", "id", "kind", "payload", "persist"}`` at enqueue
    and ``{"op": "done", "id"}`` at delivery.  Appends are flushed and
    fsynced — a unit acknowledged to the journal survives ``kill -9``.
    A torn tail (the crash happened mid-append) invalidates only the
    torn line, exactly like the result store's segments.

    :meth:`pending` replays the file into the not-yet-delivered unit
    set; :meth:`reset` rewrites the file with just the given units
    (compaction — called when the pending set is empty or after a
    recovery replay re-homed old entries onto new ids).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._append({"format": JOURNAL_FORMAT})

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, default=str)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_unit(
        self, unit_id: str, kind: str, payload: Any,
        persist: Optional[Dict[str, Any]],
        trace: Optional[Dict[str, str]] = None,
    ) -> None:
        record = {
            "op": "unit", "id": unit_id, "kind": kind,
            "payload": payload, "persist": persist,
        }
        # Only present when tracing is on, so an obs-off journal stays
        # byte-identical to the pre-obs format.
        if trace is not None:
            record["trace"] = trace
        with self._lock:
            self._append(record)

    def record_done(self, unit_id: str) -> None:
        with self._lock:
            self._append({"op": "done", "id": unit_id})

    def pending(self) -> List[Dict[str, Any]]:
        """Replay the journal into the undelivered unit list (in
        enqueue order).  Corrupt or torn lines are skipped — the
        journal must never make a restart worse than a cold start."""
        with self._lock:
            self._handle.flush()
            units: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
            try:
                with open(self.path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail / damage: skip
                        op = record.get("op")
                        if op == "unit" and "id" in record:
                            units[record["id"]] = record
                        elif op == "done":
                            units.pop(record.get("id"), None)
            except OSError:
                return []
            return list(units.values())

    def reset(self, units: Optional[List[Dict[str, Any]]] = None) -> None:
        """Rewrite the journal to exactly ``units`` (default: empty)."""
        with self._lock:
            self._handle.close()
            tmp = self.path.with_suffix(".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps({"format": JOURNAL_FORMAT}) + "\n")
                for record in units or []:
                    handle.write(json.dumps(record, default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:
                pass


# -- supervision -------------------------------------------------------------


@dataclass
class SupervisorConfig:
    """Liveness and delivery policy knobs (CLI-exposed on ``serve``)."""

    #: Attempt lease: a remote attempt must heartbeat within this
    #: window or forfeit the unit; also the lease advertised to
    #: workers (they beat at a third of it).
    lease_s: float = 15.0
    #: A remote worker silent this long (no poll, no beat) is dropped
    #: from the fleet and its attempts forfeited.
    worker_timeout_s: float = 30.0
    #: Transport failures tolerated per unit before it resolves error.
    unit_retries: int = 3
    #: Exponential-backoff base/cap between re-dispatches of one unit.
    retry_base_s: float = 0.25
    retry_max_s: float = 5.0
    #: Hedging: a unit's only live attempt older than
    #: ``max(hedge_min_s, hedge_factor * EWMA latency of its kind)``
    #: (or ``hedge_after_s`` exactly, when set) gets a speculative
    #: duplicate on an idle worker.  One hedge per unit.
    hedge_after_s: Optional[float] = None
    hedge_min_s: float = 2.0
    hedge_factor: float = 4.0
    #: Long-poll window advertised to remote workers.
    poll_s: float = 10.0
    #: Scheduler tick (lease checks, retries, hedges).
    tick_s: float = 0.05


@dataclass
class _Attempt:
    worker: str
    started: float
    deadline: float
    hedge: bool = False
    failed: bool = False
    #: The "serve.attempt" span (None when obs is off).
    span: Any = None


@dataclass
class _Unit:
    id: str
    kind: str
    payload: Any
    deadline: Optional[float] = None
    created: float = field(default_factory=time.monotonic)
    attempts: List[_Attempt] = field(default_factory=list)
    tried: set = field(default_factory=set)
    failures: int = 0
    next_due: float = 0.0
    resolved: bool = False
    resolved_at: Optional[float] = None
    hedges: int = 0
    #: Propagated trace context ({"trace", "span"}) of the owning
    #: serve.unit span; parent of every attempt span.
    trace: Optional[Dict[str, str]] = None

    def resolve(self) -> None:
        self.resolved = True
        self.resolved_at = time.monotonic()


@dataclass
class _Worker:
    id: str
    transport: str  # "local" | "remote"
    label: Optional[str] = None
    registered: float = field(default_factory=time.monotonic)
    last_seen: float = field(default_factory=time.monotonic)
    #: unit ids currently leased to this worker.
    inflight: set = field(default_factory=set)
    #: remote: units assigned but not yet picked up by a poll.
    mailbox: deque = field(default_factory=deque)
    completed: int = 0
    failed: int = 0
    lost: bool = False


class Supervisor:
    """Owns the fleet and the delivery of every dispatch unit.

    ``deliver(unit_id, status, result)`` is invoked exactly once per
    unit (never under the supervisor lock), with the first terminal
    outcome.  ``local_workers`` forks the local fleet; remote workers
    join and leave at runtime through the ``/worker/*`` endpoints
    (:meth:`register_worker` / :meth:`poll` / :meth:`heartbeat` /
    :meth:`submit_result`).
    """

    def __init__(
        self,
        deliver: Callable[[str, str, Any], None],
        local_workers: int = 0,
        config: Optional[SupervisorConfig] = None,
        obs: Optional[Any] = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self._deliver = deliver
        #: Collector sink (``fold(blob)`` / ``record(spans)``) owned by
        #: the service; None when obs is off.
        self._obs = obs
        self._lock = threading.RLock()
        self._poll_wake = threading.Condition(self._lock)
        self._units: Dict[str, _Unit] = {}
        self._queue: deque = deque()  # unit ids awaiting (re-)dispatch
        #: Terminal outcomes produced while holding the lock; the
        #: scheduler delivers them outside it (lock-ordering rule:
        #: ``deliver`` is never called under the supervisor lock).
        self._dead_letters: deque = deque()
        self._workers: "OrderedDict[str, _Worker]" = OrderedDict()
        self._ewma: Dict[str, float] = {}  # kind -> attempt latency
        self._stop = threading.Event()
        self._retiring = False
        self.counters: Dict[str, int] = {
            "dispatched": 0,
            "inline_units": 0,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "hedge_wasted": 0,
            "worker_failures": 0,
            "expired_leases": 0,
            "deadline_expired": 0,
        }
        self.fleet_size = 0  # live workers (census convenience)
        self._fleet = LocalFleet(local_workers)
        for worker_id in self._fleet.worker_ids():
            self._workers[worker_id] = _Worker(
                id=worker_id, transport="local"
            )
        self._inline_sessions: OrderedDict = OrderedDict()
        self._pump = None
        if self._fleet.result_q is not None:
            self._pump = threading.Thread(
                target=self._pump_loop, name="serve-pump", daemon=True
            )
            self._pump.start()
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="serve-supervise", daemon=True
        )
        self._scheduler.start()

    # -- service-facing API --------------------------------------------------

    @property
    def local_workers(self) -> int:
        with self._lock:
            return sum(
                1 for w in self._workers.values()
                if w.transport == "local" and not w.lost
            )

    def submit(
        self, unit_id: str, kind: str, payload: Any,
        deadline: Optional[float] = None,
        trace: Optional[Dict[str, str]] = None,
    ) -> None:
        """Accept a unit for dispatch (at-least-once from here on)."""
        with self._lock:
            self._units[unit_id] = _Unit(
                id=unit_id, kind=kind, payload=payload, deadline=deadline,
                trace=trace,
            )
            self._queue.append(unit_id)

    def abandon_pending(self) -> List[Dict[str, str]]:
        """Resolve nothing, drop everything: the drain-timeout path.

        Marks every unresolved unit resolved (late results from
        straggling workers are discarded) and returns their identity
        — the caller surfaces them and leaves them journaled so a
        restart re-dispatches the work.
        """
        abandoned = []
        with self._lock:
            for unit in self._units.values():
                if not unit.resolved:
                    unit.resolve()
                    abandoned.append({"id": unit.id, "kind": unit.kind})
            self._queue.clear()
        return abandoned

    def idle(self) -> bool:
        with self._lock:
            return not any(
                not unit.resolved for unit in self._units.values()
            )

    def retire_workers(self) -> None:
        """Tell polling remote workers to exit (the drain path)."""
        with self._lock:
            self._retiring = True
            self._poll_wake.notify_all()

    def stop(self, timeout: float = 10.0) -> bool:
        self._stop.set()
        with self._lock:
            self._poll_wake.notify_all()
        clean = self._fleet.shutdown(timeout=timeout)
        self._scheduler.join(timeout=5)
        if self._pump is not None:
            self._pump.join(timeout=5)
        return clean

    def fleet(self) -> List[Dict[str, Any]]:
        """The worker census (``/status`` and ``/stats``)."""
        now = time.monotonic()
        with self._lock:
            out = []
            for worker in self._workers.values():
                alive = not worker.lost and (
                    self._fleet.alive(worker.id)
                    if worker.transport == "local"
                    else (now - worker.last_seen
                          <= self.config.worker_timeout_s)
                )
                entry = {
                    "id": worker.id,
                    "transport": worker.transport,
                    "alive": alive,
                    "in_flight": len(worker.inflight),
                    "completed": worker.completed,
                    "failed": worker.failed,
                    "last_seen_age_s": round(now - worker.last_seen, 3),
                }
                if worker.label:
                    entry["label"] = worker.label
                if worker.transport == "local":
                    entry["pid"] = self._fleet.pid(worker.id)
                out.append(entry)
            return out

    # -- remote-worker endpoints (called from HTTP handler threads) ----------

    def register_worker(self, label: Optional[str] = None) -> Dict[str, Any]:
        worker_id = f"w{uuid.uuid4().hex[:10]}"
        with self._lock:
            self._workers[worker_id] = _Worker(
                id=worker_id, transport="remote", label=label
            )
        return {
            "worker": worker_id,
            "lease_s": self.config.lease_s,
            "poll_s": self.config.poll_s,
        }

    def poll(self, worker_id: str, wait_s: float) -> Dict[str, Any]:
        """Long-poll for a unit; doubles as a liveness signal."""
        deadline = time.monotonic() + max(0.0, min(wait_s, 60.0))
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None or worker.lost or worker.transport != "remote":
                return {"reregister": True}
            while True:
                worker.last_seen = time.monotonic()
                if self._retiring or self._stop.is_set():
                    return {"retire": True}
                if worker.mailbox:
                    unit_id = worker.mailbox.popleft()
                    unit = self._units.get(unit_id)
                    if unit is None or unit.resolved:
                        continue
                    # Picking the unit up renews its lease from now.
                    now = time.monotonic()
                    trace_ctx = None
                    for attempt in unit.attempts:
                        if attempt.worker == worker_id and not attempt.failed:
                            attempt.deadline = now + self.config.lease_s
                            trace_ctx = (
                                _obs_trace.context_of(attempt.span)
                                or trace_ctx
                            )
                    polled = {
                        "id": unit.id,
                        "kind": unit.kind,
                        "payload": unit.payload,
                        "lease_s": self.config.lease_s,
                    }
                    if trace_ctx is not None:
                        polled["trace"] = trace_ctx
                    return {"unit": polled}
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return {"unit": None}
                self._poll_wake.wait(timeout=min(remaining, 1.0))
                if worker.lost:
                    return {"reregister": True}

    def heartbeat(self, worker_id: str, unit_id: str) -> Dict[str, Any]:
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None or worker.lost:
                return {"reregister": True}
            now = time.monotonic()
            worker.last_seen = now
            unit = self._units.get(unit_id)
            wanted = False
            if unit is not None and not unit.resolved:
                for attempt in unit.attempts:
                    if attempt.worker == worker_id and not attempt.failed:
                        attempt.deadline = now + self.config.lease_s
                        wanted = True
            return {"wanted": wanted}

    def submit_result(
        self, worker_id: str, unit_id: str, status: str, result: Any,
        obs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """A worker's outcome for a unit; first terminal result wins."""
        accepted = self._on_attempt_result(
            worker_id, unit_id, status, result, obs_blob=obs
        )
        return {"accepted": accepted}

    # -- internals -----------------------------------------------------------

    def _pump_loop(self) -> None:
        """Drain the local fleet's shared result queue."""
        import queue as _queue

        while not self._stop.is_set():
            try:
                item = self._fleet.result_q.get(timeout=0.1)
            except _queue.Empty:
                continue
            except (OSError, EOFError, ValueError):
                break
            worker_id, unit_id, status, result = item[:4]
            obs_blob = item[4] if len(item) > 4 else None
            self._on_attempt_result(
                worker_id, unit_id, status, result, obs_blob=obs_blob
            )

    def _on_attempt_result(
        self, worker_id: str, unit_id: str, status: str, result: Any,
        obs_blob: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """First terminal outcome resolves the unit; the rest drop.

        ``obs_blob`` (the worker's drained metrics and spans) is folded
        into the collector only for the *accepted* result — a retried
        or hedged duplicate must not double-count a unit's work.
        """
        deliver = None
        fold = None
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_seen = time.monotonic()
                worker.inflight.discard(unit_id)
            unit = self._units.get(unit_id)
            if unit is None or unit.resolved:
                if unit is not None:
                    self.counters["hedge_wasted"] += 1
                    late = next(
                        (a for a in unit.attempts
                         if a.worker == worker_id and not a.failed), None
                    )
                    if late is not None:
                        _obs_trace.end_span(late.span, "wasted")
                return False
            attempt = next(
                (a for a in unit.attempts
                 if a.worker == worker_id and not a.failed), None
            )
            if status != "ok" and self._should_retry_error(unit, worker_id):
                # A unit-level failure on one worker: forfeit this
                # attempt and let the scheduler retry elsewhere.
                if attempt is not None:
                    attempt.failed = True
                    _obs_trace.end_span(attempt.span, "error")
                if worker is not None:
                    worker.failed += 1
                self._register_failure(unit, f"worker error: {result}")
                return False
            unit.resolve()
            if worker is not None:
                worker.completed += 1
            if attempt is not None:
                latency = time.monotonic() - attempt.started
                previous = self._ewma.get(unit.kind)
                self._ewma[unit.kind] = (
                    latency if previous is None
                    else 0.7 * previous + 0.3 * latency
                )
                if attempt.hedge:
                    self.counters["hedge_wins"] += 1
                _obs_trace.end_span(attempt.span, status)
            if _obs_state.enabled:
                # Close the losing siblings now: a hedge partner stuck
                # on a stopped worker may never report back, and its
                # attempt span must still appear in the trace.  A late
                # result's own end is idempotent and no-ops.
                for other in unit.attempts:
                    if other is not attempt and not other.failed:
                        _obs_trace.end_span(other.span, "wasted")
            deliver = (unit_id, status, result)
            fold = obs_blob
        if fold is not None and self._obs is not None:
            self._obs.fold(fold)
        if deliver is not None:
            self._deliver(*deliver)
        return True

    def _should_retry_error(self, unit: _Unit, worker_id: str) -> bool:
        """Retry a worker-reported unit error on a different worker?

        Bounded by ``unit_retries`` and only when another execution
        site exists — a deterministic error fails the same way
        everywhere and resolves after the budget; an environmental one
        (a worker wedged into a bad state) gets its chance elsewhere.
        """
        if unit.failures >= self.config.unit_retries:
            return False
        with_alternatives = any(
            w.id != worker_id and not w.lost
            for w in self._workers.values()
        )
        return with_alternatives

    def _register_failure(self, unit: _Unit, reason: str) -> None:
        """Schedule a re-dispatch with exponential backoff (lock held).

        The unit resolves as an error once the retry budget is spent.
        """
        unit.failures += 1
        self.counters["retries"] += 1
        if unit.failures > self.config.unit_retries:
            unit.resolve()
            self._dead_letters.append((
                unit.id, "error",
                f"unit failed after {unit.failures} attempt(s): {reason}",
            ))
            return
        backoff = min(
            self.config.retry_max_s,
            self.config.retry_base_s * (2 ** (unit.failures - 1)),
        )
        unit.next_due = time.monotonic() + backoff
        if unit.id not in self._queue:
            self._queue.append(unit.id)

    def _live_attempts(self, unit: _Unit) -> List[_Attempt]:
        return [a for a in unit.attempts if not a.failed]

    def _hedge_threshold(self, kind: str) -> float:
        if self.config.hedge_after_s is not None:
            return self.config.hedge_after_s
        ewma = self._ewma.get(kind)
        if ewma is None:
            return max(self.config.hedge_min_s, self.config.lease_s)
        return max(self.config.hedge_min_s, self.config.hedge_factor * ewma)

    def _schedule_loop(self) -> None:
        while not self._stop.is_set():
            inline_unit = None
            deliveries: List = []
            with self._lock:
                now = time.monotonic()
                self._check_workers(now)
                self._check_leases(now, deliveries)
                inline_unit = self._assign_queued(now)
                self._check_hedges(now)
                self._prune_resolved(now)
                while self._dead_letters:
                    deliveries.append(self._dead_letters.popleft())
            for args in deliveries:
                self._deliver(*args)
            if inline_unit is not None:
                self._run_inline(inline_unit)
                continue  # drain the queue before sleeping
            self._stop.wait(self.config.tick_s)

    def _check_workers(self, now: float) -> None:
        """Detect dead local workers and silent remote ones."""
        for worker in list(self._workers.values()):
            if worker.lost:
                continue
            if worker.transport == "local":
                if not self._fleet.alive(worker.id):
                    self._lose_worker(worker, "process died")
            else:
                if now - worker.last_seen > self.config.worker_timeout_s:
                    self._lose_worker(worker, "heartbeat timeout")
        self.fleet_size = sum(
            1 for w in self._workers.values() if not w.lost
        )

    def _lose_worker(self, worker: _Worker, reason: str) -> None:
        """Forfeit a worker and everything leased to it (lock held)."""
        worker.lost = True
        self.counters["worker_failures"] += 1
        for unit_id in list(worker.inflight):
            unit = self._units.get(unit_id)
            if unit is None or unit.resolved:
                continue
            for attempt in unit.attempts:
                if attempt.worker == worker.id and not attempt.failed:
                    attempt.failed = True
                    _obs_trace.end_span(attempt.span, "lost")
            if not self._live_attempts(unit):
                self._register_failure(
                    unit, f"worker {worker.id} lost ({reason})"
                )
        worker.inflight.clear()
        worker.mailbox.clear()
        if worker.transport == "local":
            replacement = self._fleet.discard(worker.id)
            if replacement is not None:
                self._workers[replacement] = _Worker(
                    id=replacement, transport="local"
                )
        self._poll_wake.notify_all()

    def _check_leases(self, now: float, deliveries: List) -> None:
        """Expire job deadlines and remote leases (lock held)."""
        for unit in self._units.values():
            if unit.resolved:
                continue
            if unit.deadline is not None and now > unit.deadline:
                unit.resolve()
                self.counters["deadline_expired"] += 1
                deliveries.append(
                    (unit.id, "error", "deadline exceeded")
                )
                continue
            for attempt in self._live_attempts(unit):
                worker = self._workers.get(attempt.worker)
                if worker is None or worker.lost:
                    attempt.failed = True
                    continue
                if (worker.transport == "remote"
                        and now > attempt.deadline):
                    # The lease ran out without a heartbeat: the worker
                    # is wedged or partitioned.  Forfeit the attempt
                    # (its result, should it ever arrive while the unit
                    # is still unresolved, is still accepted — first
                    # result wins).
                    attempt.failed = True
                    _obs_trace.end_span(attempt.span, "expired")
                    worker.inflight.discard(unit.id)
                    self.counters["expired_leases"] += 1
            if (unit.attempts and not self._live_attempts(unit)
                    and unit.id not in self._queue):
                self._register_failure(unit, "lease expired")

    def _prune_resolved(self, now: float) -> None:
        """Forget resolved units once stragglers can no longer report.

        A resolved unit is kept for a grace window (two leases) so a
        late hedge or post-expiry result still lands in
        ``hedge_wasted`` instead of vanishing without trace; after
        that the bookkeeping is dropped — a long-lived server must not
        grow with its history (lock held).
        """
        horizon = now - 2.0 * self.config.lease_s
        stale = [
            unit_id for unit_id, unit in self._units.items()
            if unit.resolved and (unit.resolved_at or 0.0) < horizon
        ]
        for unit_id in stale:
            del self._units[unit_id]

    def _idle_workers(self) -> List[_Worker]:
        return [
            w for w in self._workers.values()
            if not w.lost and not w.inflight and not w.mailbox
        ]

    def _assign_queued(self, now: float) -> Optional[_Unit]:
        """Dispatch due units to idle workers (lock held).

        Returns a unit to execute inline when the fleet is empty —
        executed by the caller *outside* the lock.
        """
        if not self._queue:
            return None
        fleet_empty = not any(
            not w.lost for w in self._workers.values()
        )
        idle = self._idle_workers()
        requeue: List[str] = []
        inline_unit: Optional[_Unit] = None
        while self._queue:
            unit_id = self._queue.popleft()
            unit = self._units.get(unit_id)
            if unit is None or unit.resolved:
                continue
            if now < unit.next_due:
                requeue.append(unit_id)
                continue
            if fleet_empty:
                if inline_unit is None:
                    self._start_attempt(unit, worker=None)
                    inline_unit = unit
                else:
                    requeue.append(unit_id)
                continue
            chosen = self._choose_worker(idle, unit)
            if chosen is None:
                requeue.append(unit_id)
                continue
            idle.remove(chosen)
            self._start_attempt(unit, chosen)
        self._queue.extend(requeue)
        return inline_unit

    def _choose_worker(
        self, idle: List[_Worker], unit: _Unit
    ) -> Optional[_Worker]:
        """An idle worker, preferring one the unit has not failed on."""
        fresh = [w for w in idle if w.id not in unit.tried]
        pool = fresh or idle
        return pool[0] if pool else None

    def _start_attempt(
        self, unit: _Unit, worker: Optional[_Worker], hedge: bool = False
    ) -> None:
        """Lease the unit to a worker (or mark it inline; lock held)."""
        now = time.monotonic()
        if worker is None:
            self.counters["inline_units"] += 1
            inline = _Attempt(
                worker="<inline>", started=now, deadline=float("inf")
            )
            if _obs_state.enabled:
                inline.span = _obs_trace.start_span(
                    "serve.attempt", parent=unit.trace,
                    worker="<inline>", hedge=False,
                )
            unit.attempts.append(inline)
            return
        unit.tried.add(worker.id)
        attempt = _Attempt(
            worker=worker.id,
            started=now,
            deadline=now + self.config.lease_s,
            hedge=hedge,
        )
        if _obs_state.enabled:
            # Retries and hedges become sibling serve.attempt spans
            # under the same serve.unit parent.
            attempt.span = _obs_trace.start_span(
                "serve.attempt", parent=unit.trace,
                worker=worker.id, hedge=hedge,
            )
        unit.attempts.append(attempt)
        worker.inflight.add(unit.id)
        self.counters["dispatched"] += 1
        if hedge:
            self.counters["hedges"] += 1
            unit.hedges += 1
        if worker.transport == "local":
            self._fleet.assign(
                worker.id, unit.id, unit.kind, unit.payload,
                trace=_obs_trace.context_of(attempt.span),
            )
        else:
            worker.mailbox.append(unit.id)
            self._poll_wake.notify_all()

    def _check_hedges(self, now: float) -> None:
        """Speculatively duplicate straggling units (lock held)."""
        idle = self._idle_workers()
        if not idle:
            return
        for unit in self._units.values():
            if unit.resolved or unit.hedges >= 1:
                continue
            live = self._live_attempts(unit)
            if len(live) != 1 or live[0].worker == "<inline>":
                continue
            age = now - live[0].started
            if age < self._hedge_threshold(unit.kind):
                continue
            chosen = self._choose_worker(idle, unit)
            if chosen is None:
                return
            idle.remove(chosen)
            self._start_attempt(unit, chosen, hedge=True)
            if not idle:
                return

    def _run_inline(self, unit: _Unit) -> None:
        """Degraded mode: compute on the supervisor thread."""
        parent = next(
            (a.span for a in reversed(unit.attempts)
             if a.worker == "<inline>"), None
        )
        try:
            if _obs_state.enabled:
                with _obs_trace.span(
                    "worker.compute", parent=parent,
                    worker="<inline>", unit=unit.id,
                ):
                    result = run_unit(
                        self._inline_sessions, unit.kind, unit.payload
                    )
            else:
                result = run_unit(
                    self._inline_sessions, unit.kind, unit.payload
                )
            status = "ok"
        except BaseException as exc:  # noqa: BLE001 - keep supervising
            status, result = "error", f"{type(exc).__name__}: {exc}"
        self._on_attempt_result("<inline>", unit.id, status, result)
