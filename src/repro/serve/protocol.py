"""Addressing and record kinds of the evaluation service.

Every evaluation request is normalized to the *existing* session store
address — :func:`repro.api.session.store_key` over ``(backend, options,
config_hash)`` — and then namespaced by a content hash of the system it
belongs to.  The extra fold matters because the two store contracts
differ: a :class:`repro.api.Session`-attached store directory is
per-system (the session owns exactly one system, so the config hash is
unambiguous), while one server store serves every system its clients
submit — without the namespace, two clients evaluating the *same*
configuration on *different* systems would alias one record.

Sweep cells need no such fold: a :class:`repro.explore.spec.Cell` key
already hashes the workload recipe (the system's generator parameters),
so the engine's cell records are shared verbatim between direct
``repro explore`` runs and server-side sweeps against the same store.
Conformance seeds get a deterministic key over the outcome-relevant
campaign parameters plus the seed.

**Observability envelope fields.**  With obs enabled (``REPRO_OBS=1``)
two *optional* fields ride the existing wire shapes; both are absent
with obs off, so pre-obs clients and servers interoperate unchanged:

* ``trace`` — a ``{"trace": hex, "span": hex}`` propagation context.
  Clients attach it to ``POST /evaluate`` / ``/sweep`` / ``/conform``
  bodies; the server threads it through job → unit → attempt spans and
  returns it inside the unit dict of ``POST /worker/poll`` responses
  (and persists it in the unit journal, so recovered units keep their
  trace).
* ``obs`` — a ``{"metrics": snapshot, "spans": [...]}`` blob a worker
  ships with ``POST /worker/result``; the service folds it into the
  service-wide registry and trace file for the *accepted* result only.

Neither field ever participates in addressing: ``evaluation_key``,
``seed_key`` and ``system_fingerprint`` see only the request content,
so store keys, dedup behavior and journal replay are byte-identical
with obs on, off, or mixed across the fleet.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..api.session import (
    _normalize_fault_option,
    _options_key,
    config_hash,
    store_key,
)
from ..io.serialize import config_from_dict
from ..store import content_key

__all__ = [
    "PROTOCOL_FORMAT",
    "RESULT_KIND",
    "SEED_KIND",
    "UNIT_KINDS",
    "WORKER_PROTOCOL",
    "evaluation_key",
    "seed_key",
    "system_fingerprint",
]

#: Format tag stamped into every HTTP response envelope.
PROTOCOL_FORMAT = "repro-serve-v1"
#: Format tag of the remote-worker dialect (the ``/worker/*``
#: endpoints: register → long-poll → heartbeat → result).  Stamped into
#: registration responses so a worker from a different codebase vintage
#: fails loudly at register time instead of computing garbage.
WORKER_PROTOCOL = "repro-worker-v1"
#: Dispatch-unit kinds every transport understands (the complete
#: vocabulary of :func:`repro.serve.workers.run_unit`).
UNIT_KINDS = ("eval", "cells", "seeds")
#: Store kind of served evaluation results.  The payload is exactly a
#: :meth:`repro.api.result.RunResult.to_dict` record — the same bytes a
#: direct session would produce — only the key carries the extra
#: system namespace.
RESULT_KIND = "runresult"
#: Store kind of conformance seed outcomes computed via the service.
SEED_KIND = "conformseed"

#: Campaign parameters that determine a seed's outcome.  ``workers``
#: (placement), ``campaign``/``seed0`` (range), ``fixture_dir`` and
#: ``shrink`` (reporting) deliberately do not key — the same seed under
#: the same semantics must hit the same record however it is batched.
#: ``faults`` folds in only when set (see :func:`seed_key`), so every
#: fault-free seed record keyed before fault injection existed stays
#: addressable.
_SEED_KEY_FIELDS = (
    "nodes",
    "processes_per_node",
    "periods",
    "rounds_per_period",
    "utilizations",
    "gateway_messages",
    "engine",
)


def system_fingerprint(system_dict: Dict[str, Any]) -> str:
    """Content hash of a serialized system (the namespace component)."""
    return content_key(system_dict)


def evaluation_key(
    system_h: str,
    backend: str,
    options: Dict[str, Any],
    config_dict: Dict[str, Any],
) -> Tuple[Optional[str], Optional[str]]:
    """``(session store key, serve store key)`` of one request.

    The first element is the classic per-system address
    (:func:`repro.api.session.store_key` — what a direct session would
    use); the second folds in the system fingerprint and is the address
    the service dedups and stores under.  Both are ``None`` when the
    options are not store-addressable (non-scalar values) — such a
    request is evaluated but neither coalesced nor persisted, mirroring
    the session's memory-only treatment.

    A ``faults`` option is normalized exactly as the session would —
    canonical string form, dropped entirely when null — before
    addressing, so equivalent spellings coalesce and a null-fault
    request hits the same record as a fault-free one.
    """
    options = dict(options)
    _normalize_fault_option(options)
    config = config_from_dict(config_dict)
    skey = store_key((backend, _options_key(options), config_hash(config)))
    if skey is None:
        return None, None
    return skey, content_key(["serve-eval", system_h, skey])


def seed_key(spec_dict: Dict[str, Any], seed: int) -> str:
    """Store address of one conformance seed outcome.

    A campaign's fault spec (the canonical ``faults`` string of
    :class:`repro.conformance.campaign.CampaignSpec`) joins the key
    only when set: null specs key exactly like pre-fault campaigns.
    """
    semantics = {name: spec_dict[name] for name in _SEED_KEY_FIELDS}
    faults = spec_dict.get("faults")
    if faults:
        semantics["faults"] = faults
    return content_key(["conform-seed", semantics, seed])
