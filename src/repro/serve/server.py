"""HTTP shell of the evaluation service.

A deliberately small stdlib-only server: a
:class:`http.server.ThreadingHTTPServer` (or an ``AF_UNIX`` variant for
local socket deployments) whose handler translates JSON requests into
:class:`repro.serve.service.EvaluationService` calls.  Endpoints:

================  ======  ============================================
``/evaluate``     POST    one evaluation ``{system, config, backend,
                          options, deadline_s}`` → submission envelope
``/sweep``        POST    a :class:`repro.explore.spec.SweepSpec` dict
``/conform``      POST    a :class:`CampaignSpec` dict
``/status``       GET     ``?id=`` → job status; without ``id`` → the
                          service census (fleet, queue, abandoned)
``/result``       GET     ``?id=`` → blocks briefly, then result/status
``/results``      GET     ``?id=a&id=b…`` → JSONL stream, one line per
                          job *as each completes* (arrival order)
``/stats``        GET     service metrics (queue, dedup, throughput)
``/healthz``      GET     liveness probe
``/shutdown``     POST    remote drain (tests and supervised setups)
``/worker/…``     POST    the remote-worker dialect: ``register`` →
                          ``poll`` (long) → ``heartbeat`` → ``result``
                          (see :mod:`repro.serve.supervisor`)
================  ======  ============================================

Responses are JSON envelopes stamped with the protocol format tag.  The
server speaks HTTP/1.0 with ``Connection: close`` — the ``/results``
stream writes a line per completed job and signals the end by closing,
so no chunked-encoding machinery is needed on either side.

Backpressure: a submission beyond the service's pending bound answers
``429`` with a ``Retry-After`` header (seconds); clients back off and
retry instead of the server growing without bound.

Graceful shutdown: SIGTERM/SIGINT stop the listener, then the service
drains — in-flight units finish, results are persisted to the sharded
store (the checkpoint), workers exit — and :func:`serve` returns 0.
"""

from __future__ import annotations

import contextlib
import json
import signal
import socket
import socketserver
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ReproError
from ..obs.logging import get_logger
from .protocol import PROTOCOL_FORMAT, WORKER_PROTOCOL
from .service import EvaluationService, ServiceOverloaded

__all__ = ["UnixHTTPServer", "make_server", "parse_listen", "serve"]


def _announce(message: str) -> None:
    # Structured and flushed so supervisors (and the tests) reading the
    # daemon's stdout through a pipe see "serving on ..." the moment the
    # socket is up.  The logger prefixes timestamp/level/component and
    # keeps the message text as the line suffix — stdout-parsing
    # consumers split on the message, never on the prefix.
    get_logger("serve").info(message)

#: How long ``/result`` blocks before answering with a still-running
#: status — long-polling granularity, short enough that HTTP timeouts
#: and drain never collide with a parked handler thread.
_RESULT_WAIT_S = 10.0


class _Handler(BaseHTTPRequestHandler):
    """Request translation; all state lives on ``server.service``."""

    # HTTP/1.0: every response carries Connection: close implicitly and
    # the /results JSONL stream is delimited by the close itself.
    protocol_version = "HTTP/1.0"
    server_version = "repro-serve/1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib shape
        if self.server.verbose:  # type: ignore[attr-defined]
            sys.stderr.write(
                "serve: %s %s\n" % (self.address_string(), format % args)
            )

    @property
    def service(self) -> EvaluationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(
        self,
        payload: Dict[str, Any],
        code: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(
            {"format": PROTOCOL_FORMAT, **payload}
        ).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, body: str, content_type: str, code: int = 200
    ) -> None:
        encoded = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _error(self, message: str, code: int = 400) -> None:
        self._send_json({"error": message}, code=code)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._error("request body is not valid JSON")
            return None
        if not isinstance(data, dict):
            self._error("request body must be a JSON object")
            return None
        return data

    def _query(self) -> Dict[str, List[str]]:
        return parse_qs(urlsplit(self.path).query)

    # -- dispatch ------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib shape
        route = urlsplit(self.path).path
        handler = {
            "/evaluate": self._post_evaluate,
            "/sweep": self._post_sweep,
            "/conform": self._post_conform,
            "/shutdown": self._post_shutdown,
            "/worker/register": self._post_worker_register,
            "/worker/poll": self._post_worker_poll,
            "/worker/heartbeat": self._post_worker_heartbeat,
            "/worker/result": self._post_worker_result,
        }.get(route)
        if handler is None:
            self._error(f"no such endpoint: POST {route}", code=404)
            return
        body = self._read_body()
        if body is None:
            return
        try:
            handler(body)
        except ServiceOverloaded as exc:
            self._send_json(
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                code=429,
                headers={"Retry-After": str(int(exc.retry_after_s + 0.5))},
            )
        except ReproError as exc:
            self._error(str(exc), code=409 if "draining" in str(exc) else 400)
        except (KeyError, TypeError, ValueError) as exc:
            self._error(f"malformed request: {exc}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib shape
        route = urlsplit(self.path).path
        handler = {
            "/status": self._get_status,
            "/result": self._get_result,
            "/results": self._get_results,
            "/stats": self._get_stats,
            "/metrics": self._get_metrics,
            "/trace": self._get_trace,
            "/healthz": self._get_healthz,
        }.get(route)
        if handler is None:
            self._error(f"no such endpoint: GET {route}", code=404)
            return
        handler()

    # -- endpoints -----------------------------------------------------------

    @staticmethod
    def _deadline(body: Dict[str, Any]) -> Optional[float]:
        deadline_s = body.get("deadline_s")
        return None if deadline_s is None else float(deadline_s)

    def _post_evaluate(self, body: Dict[str, Any]) -> None:
        self._send_json(self.service.submit_evaluation(
            system=body["system"],
            config=body["config"],
            backend=body.get("backend", "analysis"),
            options=body.get("options"),
            deadline_s=self._deadline(body),
            trace=body.get("trace"),
        ))

    def _post_sweep(self, body: Dict[str, Any]) -> None:
        self._send_json(self.service.submit_sweep(
            body["spec"], deadline_s=self._deadline(body),
            trace=body.get("trace"),
        ))

    def _post_conform(self, body: Dict[str, Any]) -> None:
        self._send_json(self.service.submit_campaign(
            body["spec"], deadline_s=self._deadline(body),
            trace=body.get("trace"),
        ))

    # -- the remote-worker dialect (see repro.serve.supervisor) --------------

    def _post_worker_register(self, body: Dict[str, Any]) -> None:
        registration = self.service.supervisor.register_worker(
            label=body.get("label")
        )
        self._send_json({"worker_format": WORKER_PROTOCOL, **registration})

    def _post_worker_poll(self, body: Dict[str, Any]) -> None:
        # Long-poll: the handler thread parks on the supervisor's
        # condition until a unit (or retirement) shows up.  HTTP/1.0
        # with threading handlers makes this safe — each poll owns its
        # connection and thread.
        self._send_json(self.service.supervisor.poll(
            str(body["worker"]), float(body.get("wait_s", 10.0))
        ))

    def _post_worker_heartbeat(self, body: Dict[str, Any]) -> None:
        self._send_json(self.service.supervisor.heartbeat(
            str(body["worker"]), str(body.get("unit"))
        ))

    def _post_worker_result(self, body: Dict[str, Any]) -> None:
        self._send_json(self.service.supervisor.submit_result(
            str(body["worker"]),
            str(body["unit"]),
            str(body.get("status", "error")),
            body.get("result"),
            obs=body.get("obs"),
        ))

    def _post_shutdown(self, body: Dict[str, Any]) -> None:
        self._send_json({"status": "draining"})
        self.server.request_shutdown()  # type: ignore[attr-defined]

    def _job_payload(self, job, include_result: bool) -> Dict[str, Any]:
        payload = job.public_status()
        if include_result and job.done.is_set():
            if job.status == "done":
                payload["result"] = job.result
        return payload

    def _get_status(self) -> None:
        job_id = (self._query().get("id") or [""])[0]
        if not job_id:
            # No id: the service census — fleet, queue, liveness,
            # recovered and abandoned work.
            self._send_json(self.service.census())
            return
        job = self.service.job(job_id)
        if job is None:
            self._error(f"unknown job id {job_id!r}", code=404)
            return
        self._send_json(self._job_payload(job, include_result=False))

    def _get_result(self) -> None:
        job_id = (self._query().get("id") or [""])[0]
        job = self.service.job(job_id)
        if job is None:
            self._error(f"unknown job id {job_id!r}", code=404)
            return
        job.done.wait(timeout=_RESULT_WAIT_S)
        self._send_json(self._job_payload(job, include_result=True))

    def _get_results(self) -> None:
        """JSONL stream: one line per job, in completion order."""
        ids = self._query().get("id") or []
        jobs = []
        for job_id in ids:
            job = self.service.job(job_id)
            if job is None:
                self._error(f"unknown job id {job_id!r}", code=404)
                return
            jobs.append(job)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        remaining = list(jobs)
        while remaining:
            for job in list(remaining):
                if job.done.wait(timeout=0.05):
                    line = json.dumps(
                        self._job_payload(job, include_result=True)
                    )
                    self.wfile.write(line.encode("utf-8") + b"\n")
                    self.wfile.flush()
                    remaining.remove(job)

    def _get_stats(self) -> None:
        self._send_json(self.service.stats())

    def _get_metrics(self) -> None:
        """Prometheus exposition text (scrape target)."""
        self._send_text(
            self.service.metrics_text(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _get_trace(self) -> None:
        """``?id=JOB`` → the span set of the job's trace (obs on)."""
        job_id = (self._query().get("id") or [""])[0]
        if not job_id:
            self._error("missing ?id= query parameter")
            return
        payload = self.service.trace_spans(job_id)
        if payload is None:
            self._error(
                f"no trace for job {job_id!r} (obs disabled, or the "
                "job is unknown)", code=404,
            )
            return
        self._send_json(payload)

    def _get_healthz(self) -> None:
        self._send_json({"status": "ok"})


class _ServiceHTTPServer(ThreadingHTTPServer):
    """TCP server bound to one :class:`EvaluationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: EvaluationService,
                 verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self._shutdown_requested = threading.Event()

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain (handler threads must not call
        ``shutdown()`` directly — it joins the serve loop)."""
        self._shutdown_requested.set()

    @property
    def shutdown_requested(self) -> threading.Event:
        return self._shutdown_requested

    def describe_address(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


class UnixHTTPServer(_ServiceHTTPServer):
    """The same server over an ``AF_UNIX`` socket (``--socket PATH``).

    HTTP-over-UDS keeps the wire protocol identical while removing the
    TCP listener — the natural shape for a per-user daemon on a shared
    machine (filesystem permissions are the access control).
    """

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        import os

        with contextlib.suppress(OSError):
            os.unlink(self.server_address)  # type: ignore[arg-type]
        # Skip HTTPServer.server_bind: it unpacks host/port from the
        # address, which a filesystem path does not have.
        socketserver.TCPServer.server_bind(self)
        self.server_name = str(self.server_address)
        self.server_port = 0

    def describe_address(self) -> str:
        return f"unix:{self.server_address}"


def make_server(
    service: EvaluationService,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
    verbose: bool = False,
) -> _ServiceHTTPServer:
    """Build (and bind) the HTTP server for a service."""
    if socket_path is not None:
        return UnixHTTPServer(socket_path, service, verbose=verbose)
    return _ServiceHTTPServer((host, port), service, verbose=verbose)


def serve(
    service: EvaluationService,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
    announce=_announce,
    drain_timeout: Optional[float] = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT or ``POST /shutdown``.

    The listener runs on a background thread; the main thread parks on
    the shutdown event so signal handlers stay trivial.  On shutdown
    the listener stops first (no new requests), then the service drains
    (in-flight units finish and are persisted — the checkpoint), and 0
    is returned for the clean exit the supervisor contract expects.
    """
    server = make_server(
        service, host=host, port=port, socket_path=socket_path,
        verbose=verbose,
    )
    stop = server.shutdown_requested
    previous: Dict[int, Any] = {}

    def _handler(signum, frame):  # noqa: ARG001 - signal API shape
        stop.set()

    with contextlib.suppress(ValueError):  # not the main thread (tests)
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _handler)
    listener = threading.Thread(
        target=server.serve_forever, name="serve-listener", daemon=True
    )
    listener.start()
    announce(f"serving on {server.describe_address()}")
    if ready is not None:
        ready.set()
    try:
        stop.wait()
        announce("draining: finishing in-flight work...")
        server.shutdown()
        listener.join(timeout=10)
        clean = service.drain(timeout=drain_timeout)
        if clean:
            announce("drained")
        elif service.abandoned:
            # The satellite contract: abandoned work is *visible* — in
            # the exit message and journaled for the next start.
            announce(
                f"drain timed out; abandoned {len(service.abandoned)} "
                "unit(s) (journaled; they re-dispatch on the next start): "
                + ", ".join(entry["id"] for entry in service.abandoned)
            )
        else:
            announce("drain timed out")
        return 0 if clean else 1
    finally:
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def parse_listen(value: str) -> Tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` → ``(host, port)``."""
    host, _, port = value.rpartition(":")
    return (host or "127.0.0.1", int(port))
