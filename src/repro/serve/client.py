"""Client side of the evaluation service.

:class:`ServeClient` is a thin stdlib HTTP client over the endpoints of
:mod:`repro.serve.server` — submit, poll, stream — plus two adapters
that make the service a drop-in backend for the existing front ends:
:func:`run_sweep_via_server` returns the same
:class:`repro.explore.engine.ExploreReport` a local
:func:`repro.explore.run_sweep` would, and
:func:`run_campaign_via_server` the same
:class:`repro.conformance.campaign.CampaignReport` — which is what lets
``repro explore --server URL`` / ``repro conform --server URL`` reuse
their entire reporting paths unchanged.

Server URLs are ``http://host:port`` or ``unix:/path/to.sock`` (the
AF_UNIX transport of :class:`repro.serve.server.UnixHTTPServer`).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import quote, urlsplit

from ..exceptions import ReproError
from ..obs import state as _obs_state
from ..obs import trace as _obs_trace

__all__ = [
    "ServeClient",
    "ServerError",
    "run_campaign_via_server",
    "run_sweep_via_server",
]


class ServerError(ReproError):
    """The server answered with an error envelope (or not at all)."""


#: Transport failures worth retrying: the connection died before the
#: response arrived (refused while the server restarts, reset/aborted
#: by a crash-looping or overloaded peer, pipe broken mid-send, or the
#: server hung up before sending a status line —
#: ``http.client.RemoteDisconnected`` subclasses ``ConnectionResetError``).
#: Retrying is safe because every service request is idempotent: the
#: server dedups by content key, so a resubmitted evaluation attaches
#: to the in-flight job or hits the store instead of recomputing.
_RETRYABLE = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._unix_path)


class ServeClient:
    """One evaluation-service endpoint (TCP or unix socket).

    Connections are per-request (the server is HTTP/1.0), so a client
    object is cheap, stateless and safe to share across threads.

    The transport is hardened for long campaigns against a restarting
    or briefly overloaded server: connection establishment gets its own
    short ``connect_timeout`` (reads keep the long ``timeout``), and a
    request whose connection is refused or reset before the response
    arrives is retried up to ``retries`` times with bounded exponential
    backoff (``backoff_s`` doubling per attempt, capped at
    ``backoff_max_s``).  Retries are safe because the service dedups by
    content key — see ``_RETRYABLE``.  ``retries=0`` disables retrying.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 600.0,
        connect_timeout: float = 10.0,
        retries: int = 4,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ) -> None:
        self.url = url
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        if url.startswith("unix:"):
            self._unix_path: Optional[str] = url[len("unix:"):]
        else:
            parts = urlsplit(url if "//" in url else f"http://{url}")
            if parts.scheme not in ("", "http"):
                raise ServerError(
                    f"unsupported server URL scheme {parts.scheme!r} "
                    "(use http://host:port or unix:/path)"
                )
            self._unix_path = None
            self._host = parts.hostname or "127.0.0.1"
            self._port = parts.port or 80

    # -- transport -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        # Establish under the short connect timeout; _open widens the
        # socket to the long read timeout once connected.
        if self._unix_path is not None:
            return _UnixHTTPConnection(
                self._unix_path, timeout=self.connect_timeout
            )
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout
        )

    def _open(
        self,
        method: str,
        path: str,
        payload: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[http.client.HTTPConnection, http.client.HTTPResponse]:
        """Connect, send one request, return ``(conn, response)``.

        Retries the whole connect-send-status round trip on the
        transport failures of ``_RETRYABLE`` with bounded exponential
        backoff; anything past the status line (a torn body) is not
        retried here — the caller sees it as a ``ServerError``.
        """
        attempt = 0
        while True:
            conn = self._connection()
            try:
                conn.connect()
                if conn.sock is not None:
                    conn.sock.settimeout(self.timeout)
                conn.request(method, path, body=payload, headers=headers or {})
                return conn, conn.getresponse()
            except _RETRYABLE as exc:
                conn.close()
                if attempt >= self.retries:
                    raise ServerError(
                        f"server {self.url} unreachable after "
                        f"{attempt + 1} attempt(s) ({method} {path}: {exc})"
                    ) from exc
                time.sleep(
                    min(self.backoff_max_s, self.backoff_s * (2 ** attempt))
                )
                attempt += 1
            except BaseException:
                conn.close()
                raise

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        attempt = 0
        while True:
            try:
                conn, response = self._open(method, path, payload, headers)
            except (OSError, http.client.HTTPException) as exc:
                raise ServerError(
                    f"server {self.url} unreachable ({method} {path}: {exc})"
                ) from exc
            try:
                try:
                    data = json.loads(response.read().decode("utf-8"))
                except (OSError, http.client.HTTPException,
                        json.JSONDecodeError) as exc:
                    raise ServerError(
                        f"server {self.url} unreachable or spoke garbage "
                        f"({method} {path}: {exc})"
                    ) from exc
                if response.status == 429:
                    # Backpressure: the server shed this submission.
                    # Honor its Retry-After and resubmit — safe for the
                    # same idempotency reason as the transport retries.
                    if attempt >= self.retries:
                        raise ServerError(
                            data.get("error", "server overloaded (HTTP 429)")
                        )
                    delay = self._retry_after(response, data, attempt)
                elif response.status >= 400:
                    raise ServerError(
                        data.get("error", f"HTTP {response.status}")
                    )
                else:
                    return data
            finally:
                conn.close()
            time.sleep(delay)
            attempt += 1

    def _retry_after(self, response, data: Dict[str, Any],
                     attempt: int) -> float:
        """The server's advertised backoff, else the client's own."""
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                return max(0.0, float(header))
            except ValueError:
                pass
        advertised = data.get("retry_after_s")
        if isinstance(advertised, (int, float)):
            return max(0.0, float(advertised))
        return min(self.backoff_max_s, self.backoff_s * (2 ** attempt))

    # -- endpoints -----------------------------------------------------------

    def evaluate(
        self,
        system: Dict[str, Any],
        config: Dict[str, Any],
        backend: str = "analysis",
        options: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit one evaluation; returns the submission envelope.

        ``deadline_s`` propagates to the server: the supervisor stops
        retrying the work past it and the job resolves as an error —
        a client with a budget never leaves orphan compute behind.
        """
        body = {
            "system": system,
            "config": config,
            "backend": backend,
            "options": options or {},
            "deadline_s": deadline_s,
        }
        if not _obs_state.enabled:
            return self._request("POST", "/evaluate", body)
        with _obs_trace.span("client.request", op="evaluate") as root:
            body["trace"] = _obs_trace.context_of(root)
            return self._request("POST", "/evaluate", body)

    def submit_sweep(
        self, spec_dict: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        body = {"spec": spec_dict, "deadline_s": deadline_s}
        if not _obs_state.enabled:
            return self._request("POST", "/sweep", body)
        with _obs_trace.span("client.request", op="sweep") as root:
            body["trace"] = _obs_trace.context_of(root)
            return self._request("POST", "/sweep", body)

    def submit_campaign(
        self, spec_dict: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        body = {"spec": spec_dict, "deadline_s": deadline_s}
        if not _obs_state.enabled:
            return self._request("POST", "/conform", body)
        with _obs_trace.span("client.request", op="conform") as root:
            body["trace"] = _obs_trace.context_of(root)
            return self._request("POST", "/conform", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/status?id={quote(job_id)}")

    def census(self) -> Dict[str, Any]:
        """The service census (``GET /status`` without an id): fleet,
        queue depth, abandoned and recovered work."""
        return self._request("GET", "/status")

    def result(
        self, job_id: str, wait: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """The job's result, long-polling ``/result`` until resolved.

        Returns the full payload (``status`` + ``result``/``error``).
        With ``wait=False`` a single poll; otherwise retries until the
        job resolves or ``timeout`` (default: the client timeout).
        """
        deadline = time.monotonic() + (
            self.timeout if timeout is None else timeout
        )
        while True:
            payload = self._request("GET", f"/result?id={quote(job_id)}")
            if payload["status"] in ("done", "error") or not wait:
                return payload
            if time.monotonic() > deadline:
                raise ServerError(
                    f"timed out waiting for job {job_id} "
                    f"(last status {payload['status']!r})"
                )

    def results(self, job_ids: List[str]) -> Iterator[Dict[str, Any]]:
        """Stream results as they complete (the ``/results`` JSONL feed).

        Yields one payload per job in *completion* order; the stream
        ends when every requested job has resolved.
        """
        if not job_ids:
            return
        query = "&".join(f"id={quote(job_id)}" for job_id in job_ids)
        try:
            conn, response = self._open("GET", f"/results?{query}")
        except (OSError, http.client.HTTPException) as exc:
            raise ServerError(
                f"server {self.url} unreachable ({exc})"
            ) from exc
        try:
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8"))
                raise ServerError(
                    data.get("error", f"HTTP {response.status}")
                )
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The span set of a job's trace (``GET /trace?id=``)."""
        return self._request("GET", f"/trace?id={quote(job_id)}")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition text (``GET /metrics``)."""
        try:
            conn, response = self._open("GET", "/metrics")
        except (OSError, http.client.HTTPException) as exc:
            raise ServerError(
                f"server {self.url} unreachable ({exc})"
            ) from exc
        try:
            body = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServerError(f"HTTP {response.status}: {body[:200]}")
            return body
        finally:
            conn.close()

    def healthy(self) -> bool:
        try:
            return self._request("GET", "/healthz").get("status") == "ok"
        except ServerError:
            return False

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit (``POST /shutdown``)."""
        return self._request("POST", "/shutdown", {})


def _unwrap(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The job's result dict, or raise its error."""
    if payload["status"] == "error":
        raise ServerError(payload.get("error", "evaluation failed"))
    result = payload.get("result")
    if result is None:
        raise ServerError(f"job {payload.get('id')} returned no result")
    return result


def run_sweep_via_server(spec, url: str, timeout: float = 3600.0):
    """Run a sweep through a server; same report as a local run.

    The server expands the same cells, dedups them against *its* store
    and computes the remainder; the returned
    :class:`repro.explore.engine.ExploreReport` is assembled exactly as
    the local engine would (records in cell order), so the CLI's table,
    fronts and JSON report paths work unchanged.
    """
    from ..explore.engine import ExploreReport

    started = time.perf_counter()
    client = ServeClient(url, timeout=timeout)
    submitted = client.submit_sweep(spec.to_dict(), deadline_s=timeout)
    payload = client.result(submitted["id"], timeout=timeout)
    result = _unwrap(payload)
    return ExploreReport(
        spec=spec,
        records=result["records"],
        store_hits=result["store_hits"],
        computed=result["computed"],
        wall_s=time.perf_counter() - started,
    )


def run_campaign_via_server(spec, url: str, timeout: float = 3600.0):
    """Run a conformance campaign through a server.

    Fixtures are not produced (they are a server-local filesystem
    concern the service disables); everything else — outcomes, counts,
    clean verdict — matches a local ``shrink=False`` run of the spec.
    """
    from ..conformance.campaign import CampaignReport, SeedOutcome

    started = time.perf_counter()
    client = ServeClient(url, timeout=timeout)
    submitted = client.submit_campaign(spec.to_dict(), deadline_s=timeout)
    payload = client.result(submitted["id"], timeout=timeout)
    result = _unwrap(payload)
    outcomes = [
        SeedOutcome.from_dict(data) for data in result["outcomes"]
    ]
    return CampaignReport(
        spec=spec,
        outcomes=outcomes,
        wall_s=time.perf_counter() - started,
    )
