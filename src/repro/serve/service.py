"""The evaluation service core: queue, dedup, batching, worker pool.

:class:`EvaluationService` is the transport-independent engine behind
``repro serve`` (the HTTP layer in :mod:`repro.serve.server` is a thin
shell over it).  One request flows through five stages:

1. **Normalize.**  The request is reduced to its store address
   (:func:`repro.serve.protocol.evaluation_key` — the session's
   ``store_key`` namespaced by the system fingerprint).
2. **Dedup.**  A store hit completes the request immediately
   (``store_hits``); a key already queued or running attaches the
   request to the in-flight job (``dedup_hits``) — duplicate configs
   are computed exactly once however many clients race on them.
3. **Batch.**  The dispatcher groups queued requests by
   ``(system, backend, options)`` — the compatibility class that can
   share a warm :class:`repro.api.Session` — and splits each group
   into dispatch units with the same
   :func:`repro.explore.runner.partition_chunks` the sweep engine uses.
4. **Compute.**  Units fan out to a persistent pool of forked worker
   processes.  Each worker keeps an LRU of per-system sessions, so
   ``AnalysisContext``/``SimContext`` compiles amortize across every
   request that ever hits that system — the point of running a daemon
   instead of one-shot scripts.  ``workers=0`` degrades to inline
   execution in the dispatcher thread (sandboxes without fork).
5. **Persist + resolve.**  The collector writes each result to the
   sharded store (grace-window compaction keeps the directory bounded
   while live), resolves the job, and wakes every waiter.

Sweeps and conformance campaigns ride the same pipeline as batch jobs:
the service expands the spec server-side (deterministically — the same
cells/chunks a local run would produce), dedups cells/seeds against the
store, and fans the remainder out as units; the client reassembles the
report.  Worker processes never touch the store — all store I/O stays
on the service threads, so the multi-writer story stays one writer per
process plus shard-local segments.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..exceptions import ReproError
from ..explore.runner import partition_chunks
from ..store import ResultStore
from .protocol import (
    RESULT_KIND,
    SEED_KIND,
    evaluation_key,
    seed_key,
    system_fingerprint,
)

__all__ = ["EvaluationService", "Job"]

#: Warm sessions kept per worker process (LRU beyond this).
SESSION_CACHE_LIMIT = 4
#: Completed jobs remembered for status polling (LRU beyond this).
_JOB_HISTORY_LIMIT = 4096


def _worker_main(task_q, result_q) -> None:
    """Worker process loop: evaluate dispatch units until poisoned.

    Terminal signals are ignored — draining is the service's business,
    and a worker dying mid-unit would break the pool and lose the unit.
    A unit that raises reports an error result instead of killing the
    worker, so one bad request cannot take the pool down.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    sessions: OrderedDict[str, Any] = OrderedDict()
    while True:
        task = task_q.get()
        if task is None:
            break
        unit_id, kind, payload = task
        try:
            result_q.put((unit_id, "ok", _run_unit(sessions, kind, payload)))
        except BaseException as exc:  # noqa: BLE001 - worker must survive
            result_q.put((unit_id, "error", f"{type(exc).__name__}: {exc}"))


def _session_for(sessions: OrderedDict, system_h: str, system_dict):
    """The worker's warm session for a system (LRU-bounded)."""
    from ..api.session import Session
    from ..io.serialize import system_from_dict

    session = sessions.get(system_h)
    if session is None:
        session = Session(system_from_dict(system_dict))
        sessions[system_h] = session
        while len(sessions) > SESSION_CACHE_LIMIT:
            sessions.popitem(last=False)
    else:
        sessions.move_to_end(system_h)
    return session


def _run_unit(sessions: OrderedDict, kind: str, payload: Any) -> Any:
    """Evaluate one dispatch unit (worker side or inline)."""
    if kind == "eval":
        return _run_eval_unit(sessions, payload)
    if kind == "cells":
        from ..explore.engine import _evaluate_chunk

        return _evaluate_chunk(payload)
    if kind == "seeds":
        from ..conformance.campaign import CampaignSpec, _evaluate_chunk

        spec = CampaignSpec.from_dict(payload["spec"])
        outcomes = _evaluate_chunk((spec, payload["seeds"]))
        return [outcome.to_dict() for outcome in outcomes]
    raise ReproError(f"unknown dispatch unit kind {kind!r}")


def _run_eval_unit(
    sessions: OrderedDict, payload: Dict[str, Any]
) -> List[Tuple[str, str, Any]]:
    """One batched evaluation unit: same system, backend and options.

    Results are exactly what a direct session produces
    (``RunResult.to_dict()``) — the bit-identity contract of the
    service's end-to-end test.  Per-item failures become per-item error
    entries; the rest of the unit still completes.
    """
    from ..io.serialize import config_from_dict, run_result_to_dict

    session = _session_for(
        sessions, payload["system_hash"], payload["system"]
    )
    out: List[Tuple[str, str, Any]] = []
    for job_id, config_dict in payload["items"]:
        try:
            run = session.evaluate(
                config_from_dict(config_dict),
                backend=payload["backend"],
                **payload["options"],
            )
            out.append((job_id, "ok", run_result_to_dict(run)))
        except (ReproError, TypeError, ValueError) as exc:
            out.append((job_id, "error", str(exc)))
    return out


@dataclass
class Job:
    """One tracked request (a single evaluation or a whole batch)."""

    id: str
    kind: str  # "eval" | "sweep" | "conform"
    status: str = "queued"  # queued | running | done | error
    #: Serve store key (eval jobs with addressable options only).
    key: Optional[str] = None
    #: The work (eval: dispatch payload fields; batch: spec + slots).
    request: Dict[str, Any] = field(default_factory=dict)
    result: Any = None
    error: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)
    created: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Requests coalesced onto this job (the dedup fan-in count).
    attached: int = 1
    #: Batch jobs: dispatch units still out.
    pending_units: int = 0
    #: Batch jobs: results land here, position-addressed.
    slots: List[Any] = field(default_factory=list)
    #: Batch jobs: how many slots came from the store.
    store_hits: int = 0
    #: Batch jobs: how many slots were computed by this job.
    computed: int = 0

    def public_status(self) -> Dict[str, Any]:
        """The JSON shape of ``GET /status``."""
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "attached": self.attached,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.kind != "eval":
            total = len(self.slots)
            out["progress"] = {
                "total": total,
                "done": sum(1 for slot in self.slots if slot is not None),
                "store_hits": self.store_hits,
                "computed": self.computed,
            }
        if self.finished is not None and self.started is not None:
            out["compute_s"] = self.finished - self.started
        return out


class EvaluationService:
    """Queue + dedup + batching + worker pool (see module docstring).

    Parameters
    ----------
    store:
        Sharded result store (directory or instance) backing dedup and
        persistence.
    workers:
        Persistent worker processes.  ``0`` = inline execution in the
        dispatcher thread (no fork needed; used as the degraded mode in
        sandboxes and for deterministic tests).
    batch_window_s:
        How long the dispatcher lets queued requests accumulate before
        cutting dispatch units — the knob trading latency for batch
        size (and thus warm-session locality).
    """

    def __init__(
        self,
        store: Union[str, Path, ResultStore],
        workers: int = 2,
        batch_window_s: float = 0.02,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.workers = max(0, int(workers))
        self.batch_window_s = batch_window_s
        self._lock = threading.RLock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        #: serve-key -> queued/running eval job (the dedup map).
        self._inflight: Dict[str, Job] = {}
        #: Eval jobs awaiting batching.
        self._eval_queue: deque = deque()
        #: (unit_id, kind, payload) awaiting dispatch (all kinds).
        self._dispatch_queue: deque = deque()
        #: unit_id -> unit bookkeeping for the collector.
        self._units: Dict[str, Dict[str, Any]] = {}
        self._unit_counter = itertools.count()
        self._accepting = True
        self._stop = threading.Event()
        self._started_at = time.monotonic()
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "dedup_hits": 0,
            "store_hits": 0,
            "computed": 0,
            "errors": 0,
        }
        self._timings: Dict[str, float] = {
            "queue_wait_s": 0.0,
            "unit_compute_s": 0.0,
            "units": 0.0,
        }
        self._wake = threading.Condition(self._lock)
        self._procs: List[Any] = []
        self._task_q = None
        self._result_q = None
        self._inline_sessions: OrderedDict = OrderedDict()
        if self.workers > 0:
            self._start_pool()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._collector = None
        if self.workers > 0:
            self._collector = threading.Thread(
                target=self._collect_loop, name="serve-collect", daemon=True
            )
            self._collector.start()

    # -- pool ----------------------------------------------------------------

    def _start_pool(self) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
            self._task_q = ctx.Queue()
            self._result_q = ctx.Queue()
            procs = []
            for _ in range(self.workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(self._task_q, self._result_q),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            self._procs = procs
        except (OSError, PermissionError, ValueError):
            # No fork available: degrade to inline execution.
            self.workers = 0
            self._procs = []
            self._task_q = None
            self._result_q = None

    # -- submission ----------------------------------------------------------

    def submit_evaluation(
        self,
        system: Dict[str, Any],
        config: Dict[str, Any],
        backend: str = "analysis",
        options: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit one evaluation; returns the submission envelope.

        ``{"id", "status", "deduplicated", "store_hit"}`` — with
        ``status == "done"`` the result is already available (store
        hit).  A request whose key is in flight attaches to the
        existing job and returns that job's id: polling either id
        observes the single shared computation.
        """
        options = dict(options or {})
        system_h = system_fingerprint(system)
        skey, serve_key = evaluation_key(system_h, backend, options, config)
        with self._lock:
            if not self._accepting:
                raise ReproError("service is draining; not accepting work")
            self.counters["submitted"] += 1
            if serve_key is not None:
                payload = self.store.get(serve_key, kind=RESULT_KIND)
                if payload is not None:
                    job = self._new_job("eval", key=serve_key)
                    job.status = "done"
                    job.result = payload
                    job.finished = job.started = time.monotonic()
                    job.done.set()
                    self.counters["store_hits"] += 1
                    return self._submit_envelope(
                        job, deduplicated=False, store_hit=True
                    )
                inflight = self._inflight.get(serve_key)
                if inflight is not None:
                    inflight.attached += 1
                    self.counters["dedup_hits"] += 1
                    return self._submit_envelope(
                        inflight, deduplicated=True, store_hit=False
                    )
            job = self._new_job("eval", key=serve_key)
            job.request = {
                "system": system,
                "system_hash": system_h,
                "backend": backend,
                "options": options,
                "config": config,
                "skey": skey,
            }
            if serve_key is not None:
                self._inflight[serve_key] = job
            self._eval_queue.append(job)
            self._wake.notify_all()
            return self._submit_envelope(
                job, deduplicated=False, store_hit=False
            )

    def submit_sweep(self, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a whole sweep; cells dedup against the store.

        The expansion is exactly the engine's (:mod:`repro.explore`):
        same cells, same store keys, same re-homing of stored records
        onto this spec's positions — a sweep run through the server and
        one run locally against the same store produce the same records
        and share each other's checkpoints.
        """
        from ..explore.engine import CELL_KIND
        from ..explore.spec import SweepSpec

        spec = SweepSpec.from_dict(spec_dict)
        cells = spec.cells()
        with self._lock:
            if not self._accepting:
                raise ReproError("service is draining; not accepting work")
            job = self._new_job("sweep")
            job.request = {"spec": spec.to_dict()}
            job.slots = [None] * len(cells)
            self.store.refresh()
            pending: List[int] = []
            for i, cell in enumerate(cells):
                payload = self.store.get(
                    cell.key, kind=CELL_KIND, refresh=False
                )
                if isinstance(payload, dict) and payload.get("key") == cell.key:
                    job.slots[i] = {
                        **payload,
                        "index": cell.index,
                        "method": cell.method,
                        "workload": dict(cell.workload),
                        "options": dict(cell.options),
                    }
                    job.store_hits += 1
                else:
                    pending.append(i)
            self.counters["store_hits"] += job.store_hits
            units: List[List[int]] = []
            for i in pending:
                if units and (
                    cells[units[-1][-1]].workload == cells[i].workload
                ):
                    units[-1].append(i)
                else:
                    units.append([i])
            job.started = time.monotonic()
            job.status = "running"
            if not units:
                self._finish_batch(job)
            job.pending_units = len(units)
            for unit in units:
                self._enqueue_unit(
                    "cells",
                    [cells[i].to_dict() for i in unit],
                    meta={"job": job, "positions": unit, "cell_kind": True},
                )
            return self._submit_envelope(
                job, deduplicated=False, store_hit=not units
            )

    def submit_campaign(self, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a conformance campaign; seeds dedup against the store.

        The server forces ``fixture_dir=None`` (fixtures are a local
        filesystem concern of the submitting client) and re-chunks with
        its own worker count.
        """
        from ..conformance.campaign import CampaignSpec

        spec = CampaignSpec.from_dict(spec_dict)
        worker_spec = CampaignSpec.from_dict({
            **spec.to_dict(),
            "fixture_dir": None,
            "workers": 1,
            "shrink": False,
        })
        seeds = list(range(spec.seed0, spec.seed0 + spec.campaign))
        key_spec = worker_spec.to_dict()
        with self._lock:
            if not self._accepting:
                raise ReproError("service is draining; not accepting work")
            job = self._new_job("conform")
            job.request = {"spec": key_spec}
            job.slots = [None] * len(seeds)
            self.store.refresh()
            pending: List[int] = []
            for i, seed in enumerate(seeds):
                payload = self.store.get(
                    seed_key(key_spec, seed), kind=SEED_KIND, refresh=False
                )
                if isinstance(payload, dict) and payload.get("seed") == seed:
                    job.slots[i] = payload
                    job.store_hits += 1
                else:
                    pending.append(i)
            self.counters["store_hits"] += job.store_hits
            chunk_width = max(1, self.workers)
            chunks = partition_chunks(pending, chunk_width)
            job.started = time.monotonic()
            job.status = "running"
            if not chunks:
                self._finish_batch(job)
            job.pending_units = len(chunks)
            for chunk in chunks:
                self._enqueue_unit(
                    "seeds",
                    {"spec": key_spec, "seeds": [seeds[i] for i in chunk]},
                    meta={"job": job, "positions": chunk},
                )
            return self._submit_envelope(
                job, deduplicated=False, store_hit=not chunks
            )

    def _new_job(self, kind: str, key: Optional[str] = None) -> Job:
        job = Job(id=f"r{uuid.uuid4().hex[:12]}", kind=kind, key=key)
        self._jobs[job.id] = job
        while len(self._jobs) > _JOB_HISTORY_LIMIT:
            oldest_id, oldest = next(iter(self._jobs.items()))
            if not oldest.done.is_set():
                break  # never evict live work
            self._jobs.pop(oldest_id)
        return job

    @staticmethod
    def _submit_envelope(
        job: Job, deduplicated: bool, store_hit: bool
    ) -> Dict[str, Any]:
        return {
            "id": job.id,
            "status": job.status,
            "deduplicated": deduplicated,
            "store_hit": store_hit,
        }

    # -- dispatch ------------------------------------------------------------

    def _enqueue_unit(
        self, kind: str, payload: Any, meta: Dict[str, Any]
    ) -> None:
        """Register a dispatch unit and queue it (lock held)."""
        unit_id = f"u{next(self._unit_counter)}"
        meta = dict(meta)
        meta["kind"] = kind
        meta["queued_at"] = time.monotonic()
        self._units[unit_id] = meta
        self._dispatch_queue.append((unit_id, kind, payload))
        self._wake.notify_all()

    def _dispatch_loop(self) -> None:
        """Batch eval jobs into units; push every unit to the pool.

        Runs until the service stops.  The batch window lets racing
        clients' requests coalesce into fewer, larger units (more
        warm-session locality per IPC round trip).
        """
        while not self._stop.is_set():
            with self._wake:
                if not self._eval_queue and not self._dispatch_queue:
                    self._wake.wait(timeout=0.1)
                    continue
            if self._eval_queue:
                time.sleep(self.batch_window_s)
                with self._lock:
                    batch = list(self._eval_queue)
                    self._eval_queue.clear()
                    self._cut_eval_units(batch)
            units = []
            with self._lock:
                while self._dispatch_queue:
                    units.append(self._dispatch_queue.popleft())
            for unit_id, kind, payload in units:
                if self._task_q is not None:
                    self._task_q.put((unit_id, kind, payload))
                else:
                    # Inline mode: compute here, resolve directly.
                    try:
                        result = _run_unit(
                            self._inline_sessions, kind, payload
                        )
                        self._complete_unit(unit_id, "ok", result)
                    except (ReproError, TypeError, ValueError) as exc:
                        self._complete_unit(unit_id, "error", str(exc))

    def _cut_eval_units(self, batch: List[Job]) -> None:
        """Group queued eval jobs into dispatch units (lock held)."""
        import json as _json

        groups: "OrderedDict[str, List[Job]]" = OrderedDict()
        for job in batch:
            request = job.request
            group_key = _json.dumps(
                [
                    request["system_hash"],
                    request["backend"],
                    sorted(request["options"].items()),
                ],
                default=str,
            )
            groups.setdefault(group_key, []).append(job)
        for jobs in groups.values():
            request = jobs[0].request
            for unit in partition_chunks(jobs, max(1, self.workers)):
                for job in unit:
                    job.status = "running"
                    job.started = time.monotonic()
                    self._timings["queue_wait_s"] += (
                        job.started - job.created
                    )
                self._enqueue_unit(
                    "eval",
                    {
                        "system": request["system"],
                        "system_hash": request["system_hash"],
                        "backend": request["backend"],
                        "options": request["options"],
                        "items": [
                            (job.id, job.request["config"]) for job in unit
                        ],
                    },
                    meta={"jobs": {job.id: job for job in unit}},
                )

    # -- collection ----------------------------------------------------------

    def _collect_loop(self) -> None:
        import queue as _queue

        while not self._stop.is_set() or self._units:
            try:
                unit_id, status, result = self._result_q.get(timeout=0.1)
            except _queue.Empty:
                continue
            except (OSError, EOFError):
                break
            self._complete_unit(unit_id, status, result)

    def _complete_unit(self, unit_id: str, status: str, result: Any) -> None:
        with self._lock:
            meta = self._units.pop(unit_id, None)
            if meta is None:
                return
            self._timings["units"] += 1
            self._timings["unit_compute_s"] += (
                time.monotonic() - meta["queued_at"]
            )
            if "jobs" in meta:
                self._complete_eval_unit(meta, status, result)
            else:
                self._complete_batch_unit(meta, status, result)

    def _complete_eval_unit(
        self, meta: Dict[str, Any], status: str, result: Any
    ) -> None:
        jobs: Dict[str, Job] = meta["jobs"]
        if status != "ok":
            for job in jobs.values():
                self._resolve_eval(job, "error", str(result))
            return
        for job_id, item_status, payload in result:
            job = jobs.get(job_id)
            if job is not None:
                self._resolve_eval(job, item_status, payload)

    def _resolve_eval(self, job: Job, status: str, payload: Any) -> None:
        job.finished = time.monotonic()
        if status == "ok":
            job.status = "done"
            job.result = payload
            self.counters["computed"] += 1
            if job.key is not None:
                try:
                    self.store.put(job.key, payload, kind=RESULT_KIND)
                except (OSError, TypeError, ValueError):
                    pass
        else:
            job.status = "error"
            job.error = str(payload)
            self.counters["errors"] += 1
        if job.key is not None:
            self._inflight.pop(job.key, None)
        job.done.set()

    def _complete_batch_unit(
        self, meta: Dict[str, Any], status: str, result: Any
    ) -> None:
        from ..explore.engine import CELL_KIND

        job: Job = meta["job"]
        positions: List[int] = meta["positions"]
        if status != "ok":
            job.status = "error"
            job.error = str(result)
            self.counters["errors"] += 1
            job.pending_units -= 1
            job.finished = time.monotonic()
            job.done.set()
            return
        for position, record in zip(positions, result):
            job.slots[position] = record
            job.computed += 1
            self.counters["computed"] += 1
            try:
                if meta.get("cell_kind"):
                    self.store.put(record["key"], record, kind=CELL_KIND)
                else:
                    self.store.put(
                        seed_key(job.request["spec"], record["seed"]),
                        record,
                        kind=SEED_KIND,
                    )
            except (OSError, TypeError, ValueError):
                pass
        job.pending_units -= 1
        if job.pending_units <= 0 and job.status == "running":
            self._finish_batch(job)

    def _finish_batch(self, job: Job) -> None:
        """Assemble a completed batch job's result (lock held)."""
        job.status = "done"
        job.finished = time.monotonic()
        wall_s = job.finished - (job.started or job.finished)
        if job.kind == "sweep":
            job.result = {
                "records": list(job.slots),
                "store_hits": job.store_hits,
                "computed": job.computed,
                "wall_s": wall_s,
            }
        else:
            job.result = {
                "outcomes": list(job.slots),
                "store_hits": job.store_hits,
                "computed": job.computed,
                "wall_s": wall_s,
            }
        job.done.set()

    # -- observation ---------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job resolves; raises on unknown ids."""
        job = self.job(job_id)
        if job is None:
            raise KeyError(job_id)
        job.done.wait(timeout=timeout)
        return job

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: queue, dedup, store and throughput."""
        with self._lock:
            elapsed = time.monotonic() - self._started_at
            units = self._timings["units"] or 1.0
            evals = self.counters["computed"]
            queued_evals = len(self._eval_queue)
            live_units = len(self._units)
            # Live view from the index (stats.segments/shards only
            # update on full refresh, which the hot path avoids).
            per_shard = self.store.shard_stats()
            store_stats = {
                "entries": self.store.stats.entries,
                "segments": sum(
                    info["segments"] for info in per_shard.values()
                ),
                "shards": len(per_shard),
                "puts": self.store.stats.puts,
            }
            submitted = self.counters["submitted"] or 1
            return {
                "uptime_s": elapsed,
                "workers": self.workers,
                "queue_depth": queued_evals + len(self._dispatch_queue),
                "in_flight_units": live_units,
                "counters": dict(self.counters),
                "dedup_ratio": self.counters["dedup_hits"] / submitted,
                "evals_per_s": evals / elapsed if elapsed > 0 else 0.0,
                "timings": {
                    "queue_wait_s_avg": (
                        self._timings["queue_wait_s"]
                        / max(1, self.counters["computed"]
                              + self.counters["errors"])
                    ),
                    "unit_compute_s_avg": (
                        self._timings["unit_compute_s"] / units
                    ),
                },
                "store": store_stats,
            }

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: finish in-flight work, checkpoint, stop.

        Stops accepting new requests, waits for the queue and every
        dispatched unit to resolve (bounded by ``timeout``), then stops
        the workers and closes the store.  Returns True when everything
        completed, False on timeout (remaining work is abandoned but
        everything already collected is persisted — the store is the
        checkpoint).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._lock:
            self._accepting = False
        clean = True
        while True:
            with self._lock:
                idle = (
                    not self._eval_queue
                    and not self._dispatch_queue
                    and not self._units
                )
            if idle:
                break
            if deadline is not None and time.monotonic() > deadline:
                clean = False
                break
            time.sleep(0.02)
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        if self._task_q is not None:
            for _ in self._procs:
                try:
                    self._task_q.put(None)
                except (OSError, ValueError):
                    break
            for proc in self._procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
                    clean = False
        if self._collector is not None:
            self._collector.join(timeout=5)
        self._dispatcher.join(timeout=5)
        self.store.close()
        return clean

    def close(self) -> None:
        """Hard stop (tests): no drain wait, workers terminated."""
        self.drain(timeout=0.0)
