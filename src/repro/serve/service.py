"""The evaluation service core: queue, dedup, batching, supervision.

:class:`EvaluationService` is the transport-independent engine behind
``repro serve`` (the HTTP layer in :mod:`repro.serve.server` is a thin
shell over it).  One request flows through five stages:

1. **Normalize.**  The request is reduced to its store address
   (:func:`repro.serve.protocol.evaluation_key` — the session's
   ``store_key`` namespaced by the system fingerprint).
2. **Dedup.**  A store hit completes the request immediately
   (``store_hits``); a key already queued or running attaches the
   request to the in-flight job (``dedup_hits``) — duplicate configs
   are computed exactly once however many clients race on them.
3. **Batch.**  The dispatcher groups queued requests by
   ``(system, backend, options)`` — the compatibility class that can
   share a warm :class:`repro.api.Session` — and splits each group
   into dispatch units with the same
   :func:`repro.explore.runner.partition_chunks` the sweep engine uses.
4. **Compute.**  Units go to the :class:`repro.serve.supervisor.
   Supervisor`, which owns the worker fleet — local forked processes
   and/or remote HTTP workers (``repro worker --connect``) — plus
   liveness, leases, bounded retries, straggler hedging, and inline
   degradation when the fleet is empty.  Every unit is journaled
   before dispatch (crash-safe: a killed server re-dispatches pending
   units on restart) and delivered exactly once however many hedged
   attempts race.
5. **Persist + resolve.**  The service writes each delivered result to
   the sharded store (grace-window compaction keeps the directory
   bounded while live), resolves the job, and wakes every waiter.

Sweeps and conformance campaigns ride the same pipeline as batch jobs:
the service expands the spec server-side (deterministically — the same
cells/chunks a local run would produce), dedups cells/seeds against the
store, and fans the remainder out as units; the client reassembles the
report.  Worker processes never touch the store — all store I/O stays
on the service threads, so the multi-writer story stays one writer per
process plus shard-local segments.

Backpressure: the pending-work set is bounded (``max_pending`` units).
Submissions beyond it raise :class:`ServiceOverloaded`, which the HTTP
shell maps to ``429`` with a ``Retry-After`` estimate — an overloaded
server sheds load instead of growing memory, and :class:`repro.serve.
client.ServeClient` retries after the advertised delay.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..exceptions import ReproError
from ..explore.runner import partition_chunks
from ..obs import metrics as _obs_metrics
from ..obs import state as _obs_state
from ..obs import trace as _obs_trace
from ..store import ResultStore
from .protocol import (
    RESULT_KIND,
    SEED_KIND,
    evaluation_key,
    seed_key,
    system_fingerprint,
)
from .supervisor import Supervisor, SupervisorConfig, UnitJournal

__all__ = ["EvaluationService", "Job", "ServiceOverloaded"]

#: Completed jobs remembered for status polling (LRU beyond this).
_JOB_HISTORY_LIMIT = 4096

#: Pending-unit journal file, inside the store directory (segments are
#: only scanned under ``segments/`` and ``shards/``, so the store never
#: mistakes it for data).
_JOURNAL_NAME = "serve-journal.jsonl"


class _ServiceObs:
    """The serve-side obs collector: one service-wide view.

    Folds worker-shipped blobs (drained metrics + spans) into the
    process registry, appends every span — local or shipped — to a
    JSONL trace file in the store directory, keeps a bounded in-memory
    span buffer for ``GET /trace``, and remembers which trace id each
    job belongs to.  Constructed only when obs is enabled; every call
    site guards with ``if self._obs is not None``.
    """

    TRACE_NAME = "serve-trace.jsonl"

    def __init__(self, store_root: Union[str, Path]) -> None:
        self.registry = _obs_metrics.registry()
        self.path = Path(store_root) / self.TRACE_NAME
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=100_000)
        self._job_traces: "OrderedDict[str, str]" = OrderedDict()

    def link_job(self, job_id: str, span: Any) -> None:
        if span is None:
            return
        with self._lock:
            self._job_traces[job_id] = span.trace_id
            while len(self._job_traces) > _JOB_HISTORY_LIMIT:
                self._job_traces.popitem(last=False)

    def record(self, spans: Optional[List[Dict[str, Any]]]) -> None:
        if not spans:
            return
        import json as _json

        with self._lock:
            self._spans.extend(spans)
            try:
                with open(self.path, "a", encoding="utf-8") as handle:
                    for entry in spans:
                        handle.write(_json.dumps(entry, default=str) + "\n")
            except OSError:
                pass  # tracing must never fail the work

    def fold(self, blob: Any) -> None:
        """Merge one worker's shipped obs blob (exactly once per unit)."""
        if not isinstance(blob, dict):
            return
        metrics = blob.get("metrics")
        if metrics:
            self.registry.merge(metrics)
        self.record(blob.get("spans") or [])

    def flush_local(self) -> None:
        """Collect spans finished on this process's own threads."""
        self.record(_obs_trace.drain_spans())

    def trace_of(self, job_id: str) -> Optional[str]:
        with self._lock:
            return self._job_traces.get(job_id)

    def spans_for(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                entry for entry in self._spans
                if entry.get("trace") == trace_id
            ]


class ServiceOverloaded(ReproError):
    """The pending-work bound is hit; retry after ``retry_after_s``."""

    def __init__(self, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"service overloaded ({depth} pending units, limit {limit}); "
            f"retry in {retry_after_s:.1f}s"
        )
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One tracked request (a single evaluation or a whole batch)."""

    id: str
    kind: str  # "eval" | "sweep" | "conform" | "recovery"
    status: str = "queued"  # queued | running | done | error
    #: Serve store key (eval jobs with addressable options only).
    key: Optional[str] = None
    #: The work (eval: dispatch payload fields; batch: spec + slots).
    request: Dict[str, Any] = field(default_factory=dict)
    result: Any = None
    error: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)
    created: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Client-propagated deadline (monotonic instant; None = none).
    deadline: Optional[float] = None
    #: Requests coalesced onto this job (the dedup fan-in count).
    attached: int = 1
    #: Batch jobs: dispatch units still out.
    pending_units: int = 0
    #: Batch jobs: results land here, position-addressed.
    slots: List[Any] = field(default_factory=list)
    #: Batch jobs: how many slots came from the store.
    store_hits: int = 0
    #: Batch jobs: how many slots were computed by this job.
    computed: int = 0
    #: The "serve.job" span (None when obs is off).
    span: Any = None

    def public_status(self) -> Dict[str, Any]:
        """The JSON shape of ``GET /status?id=``."""
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "attached": self.attached,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.kind != "eval":
            total = len(self.slots)
            out["progress"] = {
                "total": total,
                "done": sum(1 for slot in self.slots if slot is not None),
                "store_hits": self.store_hits,
                "computed": self.computed,
            }
        if self.finished is not None and self.started is not None:
            out["compute_s"] = self.finished - self.started
        return out


class EvaluationService:
    """Queue + dedup + batching + supervised fleet (module docstring).

    Parameters
    ----------
    store:
        Sharded result store (directory or instance) backing dedup and
        persistence.
    workers:
        Local forked worker processes.  ``0`` starts no local fleet —
        the service computes inline until remote workers connect
        (``repro worker --connect URL``), and degrades back to inline
        whenever the fleet empties.
    batch_window_s:
        How long the dispatcher lets queued requests accumulate before
        cutting dispatch units — the knob trading latency for batch
        size (and thus warm-session locality).
    max_pending:
        Bound on queued evaluations + in-flight dispatch units; beyond
        it submissions raise :class:`ServiceOverloaded` (HTTP 429).
    journal:
        Keep the crash-safe pending-unit journal (default on).  A
        restarted service re-dispatches journaled in-flight units.
    supervisor:
        Liveness/delivery policy (:class:`SupervisorConfig`); defaults
        are production-shaped, tests shrink the timers.
    """

    def __init__(
        self,
        store: Union[str, Path, ResultStore],
        workers: int = 2,
        batch_window_s: float = 0.02,
        max_pending: int = 1024,
        journal: bool = True,
        supervisor: Optional[SupervisorConfig] = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.workers = max(0, int(workers))
        self.batch_window_s = batch_window_s
        self.max_pending = max(1, int(max_pending))
        self._lock = threading.RLock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        #: serve-key -> queued/running eval job (the dedup map).
        self._inflight: Dict[str, Job] = {}
        #: Eval jobs awaiting batching.
        self._eval_queue: deque = deque()
        #: unit_id -> unit bookkeeping for completion.
        self._units: Dict[str, Dict[str, Any]] = {}
        self._unit_counter = itertools.count()
        self._unit_nonce = uuid.uuid4().hex[:6]
        self._accepting = True
        self._stop = threading.Event()
        self._started_at = time.monotonic()
        #: Units dropped by a timed-out drain (still journaled).
        self.abandoned: List[Dict[str, str]] = []
        #: Units replayed from the journal at startup.
        self.recovered_units = 0
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "dedup_hits": 0,
            "store_hits": 0,
            "computed": 0,
            "errors": 0,
        }
        self._timings: Dict[str, float] = {
            "queue_wait_s": 0.0,
            "unit_compute_s": 0.0,
            "units": 0.0,
        }
        self._wake = threading.Condition(self._lock)
        self.journal: Optional[UnitJournal] = (
            UnitJournal(Path(self.store.root) / _JOURNAL_NAME)
            if journal else None
        )
        self._obs: Optional[_ServiceObs] = (
            _ServiceObs(self.store.root) if _obs_state.enabled else None
        )
        self._supervisor = Supervisor(
            deliver=self._complete_unit,
            local_workers=self.workers,
            config=supervisor,
            obs=self._obs,
        )
        if self._supervisor.local_workers < self.workers:
            # fork unavailable: the fleet degraded to empty (inline).
            self.workers = self._supervisor.local_workers
        self._recover_journal()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    @property
    def supervisor(self) -> Supervisor:
        return self._supervisor

    # -- capacity ------------------------------------------------------------

    def _check_capacity(self, incoming_units: int) -> None:
        """Reject work beyond ``max_pending`` (lock held)."""
        depth = len(self._eval_queue) + len(self._units)
        if depth + incoming_units <= self.max_pending:
            return
        units_done = self._timings["units"] or 1.0
        unit_s = self._timings["unit_compute_s"] / units_done or 1.0
        parallelism = max(1, self._supervisor.fleet_size)
        retry_after = min(60.0, max(1.0, depth * unit_s / parallelism))
        raise ServiceOverloaded(depth, self.max_pending, retry_after)

    @staticmethod
    def _job_deadline(deadline_s: Optional[float]) -> Optional[float]:
        if deadline_s is None:
            return None
        return time.monotonic() + max(0.0, float(deadline_s))

    # -- submission ----------------------------------------------------------

    def submit_evaluation(
        self,
        system: Dict[str, Any],
        config: Dict[str, Any],
        backend: str = "analysis",
        options: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
        trace: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Submit one evaluation; returns the submission envelope.

        ``{"id", "status", "deduplicated", "store_hit"}`` — with
        ``status == "done"`` the result is already available (store
        hit).  A request whose key is in flight attaches to the
        existing job and returns that job's id: polling either id
        observes the single shared computation.  ``deadline_s`` bounds
        the job: the supervisor stops retrying past it and resolves
        the job as an error.
        """
        options = dict(options or {})
        system_h = system_fingerprint(system)
        skey, serve_key = evaluation_key(system_h, backend, options, config)
        with self._lock:
            if not self._accepting:
                raise ReproError("service is draining; not accepting work")
            self.counters["submitted"] += 1
            if serve_key is not None:
                payload = self.store.get(serve_key, kind=RESULT_KIND)
                if payload is not None:
                    job = self._new_job("eval", key=serve_key)
                    job.status = "done"
                    job.result = payload
                    job.finished = job.started = time.monotonic()
                    job.done.set()
                    self.counters["store_hits"] += 1
                    return self._submit_envelope(
                        job, deduplicated=False, store_hit=True
                    )
                inflight = self._inflight.get(serve_key)
                if inflight is not None:
                    inflight.attached += 1
                    self.counters["dedup_hits"] += 1
                    return self._submit_envelope(
                        inflight, deduplicated=True, store_hit=False
                    )
            self._check_capacity(1)
            job = self._new_job("eval", key=serve_key)
            self._open_job_span(job, trace)
            job.deadline = self._job_deadline(deadline_s)
            job.request = {
                "system": system,
                "system_hash": system_h,
                "backend": backend,
                "options": options,
                "config": config,
                "skey": skey,
            }
            if serve_key is not None:
                self._inflight[serve_key] = job
            self._eval_queue.append(job)
            self._wake.notify_all()
            return self._submit_envelope(
                job, deduplicated=False, store_hit=False
            )

    def submit_sweep(
        self, spec_dict: Dict[str, Any],
        deadline_s: Optional[float] = None,
        trace: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Submit a whole sweep; cells dedup against the store.

        The expansion is exactly the engine's (:mod:`repro.explore`):
        same cells, same store keys, same re-homing of stored records
        onto this spec's positions — a sweep run through the server and
        one run locally against the same store produce the same records
        and share each other's checkpoints.
        """
        from ..explore.engine import CELL_KIND
        from ..explore.spec import SweepSpec

        spec = SweepSpec.from_dict(spec_dict)
        cells = spec.cells()
        with self._lock:
            if not self._accepting:
                raise ReproError("service is draining; not accepting work")
            self.store.refresh()
            slots: List[Any] = [None] * len(cells)
            store_hits = 0
            pending: List[int] = []
            for i, cell in enumerate(cells):
                payload = self.store.get(
                    cell.key, kind=CELL_KIND, refresh=False
                )
                if isinstance(payload, dict) and payload.get("key") == cell.key:
                    slots[i] = {
                        **payload,
                        "index": cell.index,
                        "method": cell.method,
                        "workload": dict(cell.workload),
                        "options": dict(cell.options),
                    }
                    store_hits += 1
                else:
                    pending.append(i)
            units: List[List[int]] = []
            for i in pending:
                if units and (
                    cells[units[-1][-1]].workload == cells[i].workload
                ):
                    units[-1].append(i)
                else:
                    units.append([i])
            self._check_capacity(len(units))
            job = self._new_job("sweep")
            self._open_job_span(job, trace)
            job.deadline = self._job_deadline(deadline_s)
            job.request = {"spec": spec.to_dict()}
            job.slots = slots
            job.store_hits = store_hits
            self.counters["store_hits"] += store_hits
            job.started = time.monotonic()
            job.status = "running"
            if not units:
                self._finish_batch(job)
            job.pending_units = len(units)
            for unit in units:
                self._enqueue_unit(
                    "cells",
                    [cells[i].to_dict() for i in unit],
                    meta={"job": job, "positions": unit},
                    persist={"mode": "cells"},
                    deadline=job.deadline,
                    parent=job.span,
                )
            return self._submit_envelope(
                job, deduplicated=False, store_hit=not units
            )

    def submit_campaign(
        self, spec_dict: Dict[str, Any],
        deadline_s: Optional[float] = None,
        trace: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Submit a conformance campaign; seeds dedup against the store.

        The server forces ``fixture_dir=None`` (fixtures are a local
        filesystem concern of the submitting client) and re-chunks with
        its own worker count.
        """
        from ..conformance.campaign import CampaignSpec

        spec = CampaignSpec.from_dict(spec_dict)
        worker_spec = CampaignSpec.from_dict({
            **spec.to_dict(),
            "fixture_dir": None,
            "workers": 1,
            "shrink": False,
        })
        seeds = list(range(spec.seed0, spec.seed0 + spec.campaign))
        key_spec = worker_spec.to_dict()
        with self._lock:
            if not self._accepting:
                raise ReproError("service is draining; not accepting work")
            self.store.refresh()
            slots: List[Any] = [None] * len(seeds)
            store_hits = 0
            pending: List[int] = []
            for i, seed in enumerate(seeds):
                payload = self.store.get(
                    seed_key(key_spec, seed), kind=SEED_KIND, refresh=False
                )
                if isinstance(payload, dict) and payload.get("seed") == seed:
                    slots[i] = payload
                    store_hits += 1
                else:
                    pending.append(i)
            chunk_width = max(1, self.workers, self._supervisor.fleet_size)
            chunks = partition_chunks(pending, chunk_width)
            self._check_capacity(len(chunks))
            job = self._new_job("conform")
            self._open_job_span(job, trace)
            job.deadline = self._job_deadline(deadline_s)
            job.request = {"spec": key_spec}
            job.slots = slots
            job.store_hits = store_hits
            self.counters["store_hits"] += store_hits
            job.started = time.monotonic()
            job.status = "running"
            if not chunks:
                self._finish_batch(job)
            job.pending_units = len(chunks)
            for chunk in chunks:
                self._enqueue_unit(
                    "seeds",
                    {"spec": key_spec, "seeds": [seeds[i] for i in chunk]},
                    meta={"job": job, "positions": chunk},
                    persist={"mode": "seeds", "spec": key_spec},
                    deadline=job.deadline,
                    parent=job.span,
                )
            return self._submit_envelope(
                job, deduplicated=False, store_hit=not chunks
            )

    def _open_job_span(
        self, job: Job, trace: Optional[Dict[str, str]]
    ) -> None:
        """Open the job's "serve.job" span (no-op when obs is off).

        ``trace`` is the client-propagated context from the request
        body; a missing one roots a fresh trace at the job."""
        if self._obs is None:
            return
        job.span = _obs_trace.start_span(
            "serve.job", parent=trace, job=job.id, kind=job.kind
        )
        self._obs.link_job(job.id, job.span)

    def _close_job_span(self, job: Job, status: str) -> None:
        if job.span is not None:
            _obs_trace.end_span(job.span, status)
            job.span = None

    def _new_job(self, kind: str, key: Optional[str] = None) -> Job:
        job = Job(id=f"r{uuid.uuid4().hex[:12]}", kind=kind, key=key)
        self._jobs[job.id] = job
        while len(self._jobs) > _JOB_HISTORY_LIMIT:
            oldest_id, oldest = next(iter(self._jobs.items()))
            if not oldest.done.is_set():
                break  # never evict live work
            self._jobs.pop(oldest_id)
        return job

    @staticmethod
    def _submit_envelope(
        job: Job, deduplicated: bool, store_hit: bool
    ) -> Dict[str, Any]:
        return {
            "id": job.id,
            "status": job.status,
            "deduplicated": deduplicated,
            "store_hit": store_hit,
        }

    # -- dispatch ------------------------------------------------------------

    def _enqueue_unit(
        self,
        kind: str,
        payload: Any,
        meta: Dict[str, Any],
        persist: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        parent: Any = None,
    ) -> None:
        """Register, journal and hand a unit to the supervisor
        (lock held).  ``parent`` (a span or a context dict) roots the
        unit's "serve.unit" span; its context rides in the journal so a
        crash-recovered unit keeps its trace."""
        unit_id = f"u{self._unit_nonce}-{next(self._unit_counter)}"
        meta = dict(meta)
        meta["kind"] = kind
        meta["persist"] = persist or {}
        meta["queued_at"] = time.monotonic()
        trace_ctx = None
        if self._obs is not None:
            unit_span = _obs_trace.start_span(
                "serve.unit", parent=parent, unit=unit_id, kind=kind
            )
            meta["span"] = unit_span
            trace_ctx = _obs_trace.context_of(unit_span)
        self._units[unit_id] = meta
        if self.journal is not None:
            self.journal.record_unit(
                unit_id, kind, payload, persist, trace=trace_ctx
            )
        self._supervisor.submit(
            unit_id, kind, payload, deadline=deadline, trace=trace_ctx
        )

    def _dispatch_loop(self) -> None:
        """Batch queued eval jobs into units for the supervisor.

        Runs until the service stops.  The batch window lets racing
        clients' requests coalesce into fewer, larger units (more
        warm-session locality per dispatch).
        """
        while not self._stop.is_set():
            with self._wake:
                if not self._eval_queue:
                    self._wake.wait(timeout=0.1)
                    continue
            time.sleep(self.batch_window_s)
            with self._lock:
                batch = list(self._eval_queue)
                self._eval_queue.clear()
                self._cut_eval_units(batch)

    def _cut_eval_units(self, batch: List[Job]) -> None:
        """Group queued eval jobs into dispatch units (lock held)."""
        import json as _json

        groups: "OrderedDict[str, List[Job]]" = OrderedDict()
        for job in batch:
            request = job.request
            group_key = _json.dumps(
                [
                    request["system_hash"],
                    request["backend"],
                    sorted(request["options"].items()),
                ],
                default=str,
            )
            groups.setdefault(group_key, []).append(job)
        width = max(1, self.workers, self._supervisor.fleet_size)
        for jobs in groups.values():
            request = jobs[0].request
            for unit in partition_chunks(jobs, width):
                deadlines = [
                    job.deadline for job in unit if job.deadline is not None
                ]
                for job in unit:
                    job.status = "running"
                    job.started = time.monotonic()
                    self._timings["queue_wait_s"] += (
                        job.started - job.created
                    )
                self._enqueue_unit(
                    "eval",
                    {
                        "system": request["system"],
                        "system_hash": request["system_hash"],
                        "backend": request["backend"],
                        "options": request["options"],
                        "items": [
                            (job.id, job.request["config"]) for job in unit
                        ],
                    },
                    meta={"jobs": {job.id: job for job in unit}},
                    persist={
                        "mode": "eval",
                        "keys": {job.id: job.key for job in unit},
                    },
                    deadline=min(deadlines) if deadlines else None,
                    parent=unit[0].span,
                )

    # -- completion ----------------------------------------------------------

    def _complete_unit(self, unit_id: str, status: str, result: Any) -> None:
        """Supervisor delivery callback — exactly once per unit."""
        with self._lock:
            meta = self._units.pop(unit_id, None)
            if meta is None:
                return
            self._timings["units"] += 1
            self._timings["unit_compute_s"] += (
                time.monotonic() - meta["queued_at"]
            )
            _obs_trace.end_span(meta.get("span"), status)
            if self.journal is not None:
                self.journal.record_done(unit_id)
            if "jobs" in meta:
                self._complete_eval_unit(meta, status, result)
            elif "recovery" in meta:
                self._complete_recovery_unit(meta, status, result)
            else:
                self._complete_batch_unit(meta, status, result)
            if (self.journal is not None and not self._units
                    and not self._eval_queue):
                self.journal.reset()
        if self._obs is not None:
            self._obs.flush_local()

    def _complete_eval_unit(
        self, meta: Dict[str, Any], status: str, result: Any
    ) -> None:
        jobs: Dict[str, Job] = meta["jobs"]
        if status != "ok":
            for job in jobs.values():
                self._resolve_eval(job, "error", str(result))
            return
        for job_id, item_status, payload in result:
            job = jobs.get(job_id)
            if job is not None:
                self._resolve_eval(job, item_status, payload)

    def _resolve_eval(self, job: Job, status: str, payload: Any) -> None:
        job.finished = time.monotonic()
        if status == "ok":
            job.status = "done"
            job.result = payload
            self.counters["computed"] += 1
            if job.key is not None:
                try:
                    self.store.put(job.key, payload, kind=RESULT_KIND)
                except (OSError, TypeError, ValueError):
                    pass
        else:
            job.status = "error"
            job.error = str(payload)
            self.counters["errors"] += 1
        self._close_job_span(job, job.status)
        if job.key is not None:
            self._inflight.pop(job.key, None)
        job.done.set()

    def _complete_batch_unit(
        self, meta: Dict[str, Any], status: str, result: Any
    ) -> None:
        from ..explore.engine import CELL_KIND

        job: Job = meta["job"]
        positions: List[int] = meta["positions"]
        if status != "ok":
            job.status = "error"
            job.error = str(result)
            self.counters["errors"] += 1
            job.pending_units -= 1
            job.finished = time.monotonic()
            self._close_job_span(job, "error")
            job.done.set()
            return
        cell_kind = meta["persist"].get("mode") == "cells"
        for position, record in zip(positions, result):
            job.slots[position] = record
            job.computed += 1
            self.counters["computed"] += 1
            try:
                if cell_kind:
                    self.store.put(record["key"], record, kind=CELL_KIND)
                else:
                    self.store.put(
                        seed_key(job.request["spec"], record["seed"]),
                        record,
                        kind=SEED_KIND,
                    )
            except (OSError, TypeError, ValueError):
                pass
        job.pending_units -= 1
        if job.pending_units <= 0 and job.status == "running":
            self._finish_batch(job)

    def _finish_batch(self, job: Job) -> None:
        """Assemble a completed batch job's result (lock held)."""
        job.status = "done"
        job.finished = time.monotonic()
        wall_s = job.finished - (job.started or job.finished)
        if job.kind == "sweep":
            job.result = {
                "records": list(job.slots),
                "store_hits": job.store_hits,
                "computed": job.computed,
                "wall_s": wall_s,
            }
        elif job.kind == "conform":
            job.result = {
                "outcomes": list(job.slots),
                "store_hits": job.store_hits,
                "computed": job.computed,
                "wall_s": wall_s,
            }
        else:  # recovery
            job.result = {
                "recovered": list(job.slots),
                "computed": job.computed,
                "wall_s": wall_s,
            }
        self._close_job_span(job, "done")
        job.done.set()

    # -- journal recovery ----------------------------------------------------

    def _recover_journal(self) -> None:
        """Re-dispatch units a killed predecessor left in flight.

        Pending journal entries are re-homed onto fresh unit ids under
        a ``recovery`` job; each completed unit's results are persisted
        to the store by the keys recorded at original enqueue time —
        the attached clients are gone (their connections died with the
        old process), but the *work* is not: a client that resubmits
        hits the store.
        """
        if self.journal is None:
            return
        entries = self.journal.pending()
        if not entries:
            return
        with self._lock:
            job = self._new_job("recovery")
            job.request = {"journal_units": len(entries)}
            job.slots = [None] * len(entries)
            job.started = time.monotonic()
            job.status = "running"
            job.pending_units = len(entries)
            # Re-home onto fresh ids first (reset drops the old ones),
            # so a crash *during* recovery still re-dispatches.
            self.journal.reset()
            for i, entry in enumerate(entries):
                self._enqueue_unit(
                    entry.get("kind", "eval"),
                    entry.get("payload"),
                    meta={"job": job, "positions": [i], "recovery": True},
                    persist=entry.get("persist") or {},
                    # A recovered unit resumes the trace it was
                    # enqueued under before the crash.
                    parent=entry.get("trace"),
                )
            self.recovered_units = len(entries)

    def _complete_recovery_unit(
        self, meta: Dict[str, Any], status: str, result: Any
    ) -> None:
        """Persist a recovered unit's results by their journaled keys."""
        from ..explore.engine import CELL_KIND

        job: Job = meta["job"]
        position = meta["positions"][0]
        persist = meta["persist"]
        mode = persist.get("mode")
        persisted = 0
        if status == "ok":
            try:
                if mode == "cells":
                    for record in result:
                        self.store.put(
                            record["key"], record, kind=CELL_KIND
                        )
                        persisted += 1
                elif mode == "seeds":
                    for record in result:
                        self.store.put(
                            seed_key(persist["spec"], record["seed"]),
                            record,
                            kind=SEED_KIND,
                        )
                        persisted += 1
                elif mode == "eval":
                    keys = persist.get("keys") or {}
                    for job_id, item_status, payload in result:
                        key = keys.get(job_id)
                        if item_status == "ok" and key:
                            self.store.put(key, payload, kind=RESULT_KIND)
                            persisted += 1
            except (OSError, TypeError, ValueError, KeyError):
                pass
            job.computed += persisted
            self.counters["computed"] += persisted
        else:
            self.counters["errors"] += 1
        job.slots[position] = {
            "mode": mode, "status": status, "persisted": persisted,
        }
        job.pending_units -= 1
        if job.pending_units <= 0 and job.status == "running":
            self._finish_batch(job)

    # -- observation ---------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job resolves; raises on unknown ids."""
        job = self.job(job_id)
        if job is None:
            raise KeyError(job_id)
        job.done.wait(timeout=timeout)
        return job

    def census(self) -> Dict[str, Any]:
        """The ``GET /status`` (no id) payload: fleet + liveness."""
        with self._lock:
            return {
                "status": "draining" if not self._accepting else "ok",
                "accepting": self._accepting,
                "uptime_s": time.monotonic() - self._started_at,
                "queue_depth": len(self._eval_queue) + len(self._units),
                "max_pending": self.max_pending,
                "fleet": self._supervisor.fleet(),
                "supervisor": dict(self._supervisor.counters),
                "abandoned": list(self.abandoned),
                "recovered_units": self.recovered_units,
            }

    def metrics_text(self) -> str:
        """``GET /metrics``: Prometheus exposition text.

        The registry part (merged per-worker counters, histograms) is
        populated only with obs on; the service and supervisor counters
        and queue gauges are always exported, so the endpoint stays
        useful — and scrape-valid — with obs off.
        """
        from ..obs.export import prometheus_text

        with self._lock:
            extra_counters = {
                f"repro_serve_{name}_total": value
                for name, value in self.counters.items()
            }
            extra_counters.update({
                f"repro_supervisor_{name}_total": value
                for name, value in self._supervisor.counters.items()
            })
            extra_gauges = {
                "repro_serve_queue_depth":
                    len(self._eval_queue) + len(self._units),
                "repro_serve_in_flight_units": len(self._units),
                "repro_serve_fleet_size": self._supervisor.fleet_size,
                "repro_serve_uptime_seconds":
                    time.monotonic() - self._started_at,
            }
        snapshot = (
            _obs_metrics.registry().snapshot()
            if self._obs is not None else None
        )
        return prometheus_text(snapshot, extra_counters, extra_gauges)

    def trace_spans(self, job_id: str) -> Optional[Dict[str, Any]]:
        """``GET /trace?id=``: the span set of a job's trace, or None
        when obs is off / the job (or its trace) is unknown."""
        if self._obs is None:
            return None
        self._obs.flush_local()
        trace_id = self._obs.trace_of(job_id)
        if trace_id is None:
            return None
        return {
            "job": job_id,
            "trace": trace_id,
            "spans": self._obs.spans_for(trace_id),
        }

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: queue, dedup, store and throughput."""
        with self._lock:
            elapsed = time.monotonic() - self._started_at
            units = self._timings["units"] or 1.0
            evals = self.counters["computed"]
            queued_evals = len(self._eval_queue)
            live_units = len(self._units)
            # Live view from the index (stats.segments/shards only
            # update on full refresh, which the hot path avoids).
            per_shard = self.store.shard_stats()
            store_stats = {
                "entries": self.store.stats.entries,
                "segments": sum(
                    info["segments"] for info in per_shard.values()
                ),
                "shards": len(per_shard),
                "puts": self.store.stats.puts,
            }
            submitted = self.counters["submitted"] or 1
            return {
                "uptime_s": elapsed,
                "workers": self.workers,
                "queue_depth": queued_evals + live_units,
                "max_pending": self.max_pending,
                "in_flight_units": live_units,
                "counters": dict(self.counters),
                "supervisor": dict(self._supervisor.counters),
                "fleet": self._supervisor.fleet(),
                "abandoned": list(self.abandoned),
                "recovered_units": self.recovered_units,
                "dedup_ratio": self.counters["dedup_hits"] / submitted,
                "evals_per_s": evals / elapsed if elapsed > 0 else 0.0,
                "timings": {
                    "queue_wait_s_avg": (
                        self._timings["queue_wait_s"]
                        / max(1, self.counters["computed"]
                              + self.counters["errors"])
                    ),
                    "unit_compute_s_avg": (
                        self._timings["unit_compute_s"] / units
                    ),
                },
                "store": store_stats,
                "obs_enabled": self._obs is not None,
            }

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: finish in-flight work, checkpoint, stop.

        Stops accepting new requests, waits for the queue and every
        dispatched unit to resolve (bounded by ``timeout``), then stops
        the fleet and closes the store.  Returns True when everything
        completed.  On timeout the remaining units are *abandoned
        visibly*: their identities land in :attr:`abandoned` (surfaced
        by ``/status``, ``/stats`` and the CLI exit message), their
        attached jobs resolve as errors so no client hangs, and — the
        crash-safety contract — they stay in the journal, so the next
        start re-dispatches them.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._lock:
            self._accepting = False
        clean = True
        while True:
            with self._lock:
                idle = not self._eval_queue and not self._units
            if idle:
                break
            if deadline is not None and time.monotonic() > deadline:
                clean = False
                break
            time.sleep(0.02)
        if not clean:
            self._abandon_remaining()
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        self._supervisor.retire_workers()
        fleet_clean = self._supervisor.stop()
        self._dispatcher.join(timeout=5)
        if self._obs is not None:
            self._obs.flush_local()
        if self.journal is not None:
            self.journal.close()
        self.store.close()
        return clean and fleet_clean

    def _abandon_remaining(self) -> None:
        """Drain timed out: journal + surface what was left behind."""
        with self._lock:
            # Undispatched eval jobs become journaled units first —
            # "abandoned invisibly" is exactly the failure mode this
            # path exists to close.
            batch = list(self._eval_queue)
            self._eval_queue.clear()
            if batch:
                self._cut_eval_units(batch)
        dropped = self._supervisor.abandon_pending()
        with self._lock:
            for entry in dropped:
                meta = self._units.pop(entry["id"], None)
                record = {"id": entry["id"], "kind": entry["kind"]}
                self.abandoned.append(record)
                if meta is None:
                    continue
                message = (
                    "abandoned at drain timeout (journaled; a restarted "
                    "server re-dispatches it)"
                )
                if "jobs" in meta:
                    for job in meta["jobs"].values():
                        self._resolve_eval(job, "error", message)
                else:
                    job = meta["job"]
                    if not job.done.is_set():
                        job.status = "error"
                        job.error = message
                        job.finished = time.monotonic()
                        job.done.set()

    def close(self) -> None:
        """Hard stop (tests): no drain wait, work abandoned visibly."""
        self.drain(timeout=0.0)
