"""Worker transports of the evaluation service.

The service dispatches *units* — self-contained, JSON-serializable work
descriptions (a batch of evaluations sharing one warm session, a chunk
of sweep cells, a chunk of conformance seeds).  This module owns the
three places a unit can execute:

* **Inline** — :func:`run_unit` called directly on a service thread
  (the degraded mode when the fleet is empty, and the recovery path).
* **Local fork** — :class:`LocalFleet`: persistent forked worker
  processes, each with a *private* task queue (so the supervisor knows
  exactly which worker holds which unit — the property lease tracking
  and re-dispatch need) and a shared result queue.
* **Remote HTTP** — :func:`run_worker`: the client loop behind
  ``repro worker --connect URL``.  A remote worker registers with the
  server (``POST /worker/register``), long-polls for units
  (``POST /worker/poll``), heartbeats while computing
  (``POST /worker/heartbeat``) and posts results back
  (``POST /worker/result``).  Remote workers never touch the store —
  results flow back over HTTP and the service persists them — so a
  worker needs nothing but the codebase and a URL.

Every execution site runs the *same* :func:`run_unit` over the same
payloads, which is what keeps results bit-identical however the fleet
is shaped — the supervisor (:mod:`repro.serve.supervisor`) only decides
*where* and *when* a unit runs, never *what* it computes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import ReproError
from ..obs import reset_process, snapshot_blob
from ..obs import state as _obs_state
from ..obs import trace as _obs_trace
from ..obs.logging import get_logger

__all__ = [
    "LocalFleet",
    "run_unit",
    "run_worker",
]

#: Warm sessions kept per worker process (LRU beyond this).
SESSION_CACHE_LIMIT = 4

#: Local workers respawned after a crash, per fleet lifetime — enough
#: to shrug off stray kills, few enough that a deterministic
#: crash-on-startup cannot fork-bomb the host.
RESPAWN_LIMIT = 16


# -- unit execution (shared by every transport) ------------------------------


def _session_for(sessions: OrderedDict, system_h: str, system_dict):
    """The executor's warm session for a system (LRU-bounded)."""
    from ..api.session import Session
    from ..io.serialize import system_from_dict

    session = sessions.get(system_h)
    if session is None:
        session = Session(system_from_dict(system_dict))
        sessions[system_h] = session
        while len(sessions) > SESSION_CACHE_LIMIT:
            sessions.popitem(last=False)
    else:
        sessions.move_to_end(system_h)
    return session


def run_unit(sessions: OrderedDict, kind: str, payload: Any) -> Any:
    """Evaluate one dispatch unit (any execution site)."""
    if kind == "eval":
        return _run_eval_unit(sessions, payload)
    if kind == "cells":
        from ..explore.engine import _evaluate_chunk

        return _evaluate_chunk(payload)
    if kind == "seeds":
        from ..conformance.campaign import CampaignSpec, _evaluate_chunk

        spec = CampaignSpec.from_dict(payload["spec"])
        outcomes = _evaluate_chunk((spec, payload["seeds"]))
        return [outcome.to_dict() for outcome in outcomes]
    raise ReproError(f"unknown dispatch unit kind {kind!r}")


def _run_eval_unit(
    sessions: OrderedDict, payload: Dict[str, Any]
) -> List[Tuple[str, str, Any]]:
    """One batched evaluation unit: same system, backend and options.

    Results are exactly what a direct session produces
    (``RunResult.to_dict()``) — the bit-identity contract of the
    service's end-to-end test.  Per-item failures become per-item error
    entries; the rest of the unit still completes.
    """
    from ..io.serialize import config_from_dict, run_result_to_dict

    session = _session_for(
        sessions, payload["system_hash"], payload["system"]
    )
    out: List[Tuple[str, str, Any]] = []
    for job_id, config_dict in payload["items"]:
        try:
            run = session.evaluate(
                config_from_dict(config_dict),
                backend=payload["backend"],
                **payload["options"],
            )
            out.append((job_id, "ok", run_result_to_dict(run)))
        except (ReproError, TypeError, ValueError) as exc:
            out.append((job_id, "error", str(exc)))
    return out


# -- local fork transport ----------------------------------------------------


def _worker_main(worker_id: str, task_q, result_q) -> None:
    """Forked worker loop: evaluate dispatch units until poisoned.

    Terminal signals are ignored — draining is the service's business,
    and a worker dying mid-unit would break the pool and lose the unit.
    A unit that raises reports an error result instead of killing the
    worker, so one bad request cannot take the pool down.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    # Forked address space inherits the parent's obs buffers; clear them
    # so parent-recorded counters and spans never ship from a worker.
    reset_process()
    sessions: OrderedDict[str, Any] = OrderedDict()
    while True:
        task = task_q.get()
        if task is None:
            break
        unit_id, kind, payload = task[:3]
        trace = task[3] if len(task) > 3 else None
        try:
            if _obs_state.enabled:
                with _obs_trace.span(
                    "worker.compute", parent=trace,
                    worker=worker_id, unit=unit_id,
                ):
                    result = run_unit(sessions, kind, payload)
            else:
                result = run_unit(sessions, kind, payload)
            result_q.put(
                (worker_id, unit_id, "ok", result, snapshot_blob())
            )
        except BaseException as exc:  # noqa: BLE001 - worker must survive
            result_q.put(
                (worker_id, unit_id, "error",
                 f"{type(exc).__name__}: {exc}", snapshot_blob())
            )


class LocalFleet:
    """Forked worker processes with per-worker task queues.

    Unlike a shared task queue, a private queue per worker lets the
    supervisor attribute every in-flight unit to one process — when
    that process dies (SIGKILL, OOM) its units are known-lost and can
    be re-dispatched immediately, and a wedged process (SIGSTOP — the
    limplock case) can be hedged around without disturbing the rest of
    the pool.  Results come back on one shared queue tagged with the
    worker id.

    ``size=0`` (or a platform without ``fork``) yields an empty fleet;
    the supervisor degrades to inline execution.
    """

    def __init__(self, size: int) -> None:
        self._ctx = None
        self.result_q = None
        self._procs: Dict[str, Any] = {}
        self._queues: Dict[str, Any] = {}
        self._counter = 0
        self._respawns = 0
        if size <= 0:
            return
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
            self.result_q = self._ctx.Queue()
            for _ in range(size):
                self._spawn()
        except (OSError, PermissionError, ValueError):
            # No fork available: degrade to an empty fleet (inline).
            self._ctx = None
            self.result_q = None
            self._procs = {}
            self._queues = {}

    def _spawn(self) -> str:
        worker_id = f"local-{self._counter}"
        self._counter += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_q, self.result_q),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc
        self._queues[worker_id] = task_q
        return worker_id

    def __len__(self) -> int:
        return len(self._procs)

    def worker_ids(self) -> List[str]:
        return list(self._procs)

    def alive(self, worker_id: str) -> bool:
        proc = self._procs.get(worker_id)
        return proc is not None and proc.is_alive()

    def pid(self, worker_id: str) -> Optional[int]:
        proc = self._procs.get(worker_id)
        return proc.pid if proc is not None else None

    def assign(self, worker_id: str, unit_id: str, kind: str,
               payload: Any, trace: Optional[Dict[str, str]] = None) -> None:
        self._queues[worker_id].put((unit_id, kind, payload, trace))

    def discard(self, worker_id: str) -> Optional[str]:
        """Drop a dead worker; respawn a replacement (bounded).

        Returns the replacement's id, or None when the respawn budget
        is exhausted (a crash-looping environment must not fork-bomb).
        """
        proc = self._procs.pop(worker_id, None)
        queue = self._queues.pop(worker_id, None)
        if proc is not None:
            proc.join(timeout=0)
        if queue is not None:
            queue.close()
        if self._ctx is None or self._respawns >= RESPAWN_LIMIT:
            return None
        self._respawns += 1
        return self._spawn()

    def shutdown(self, timeout: float = 10.0) -> bool:
        """Poison-pill every worker; escalate to SIGKILL stragglers.

        SIGKILL (not SIGTERM) is the escalation because a SIGSTOPped
        worker — the limplock scenario the chaos suite rehearses —
        never runs a SIGTERM handler, while SIGKILL reaps it regardless.
        Returns True when every worker exited on the pill.
        """
        clean = True
        for worker_id, queue in self._queues.items():
            try:
                queue.put(None)
            except (OSError, ValueError):
                pass
        for worker_id, proc in self._procs.items():
            proc.join(timeout=timeout)
            if proc.is_alive():
                clean = False
                proc.kill()
                proc.join(timeout=5)
        self._procs.clear()
        self._queues.clear()
        return clean


# -- remote HTTP transport (the `repro worker` loop) -------------------------


def run_worker(
    url: str,
    label: Optional[str] = None,
    stop: Optional[threading.Event] = None,
    announce: Optional[Callable[[str], None]] = None,
    poll_s: Optional[float] = None,
    reconnect_s: float = 2.0,
) -> int:
    """The remote-worker client loop behind ``repro worker --connect``.

    Registers with the server, then loops: long-poll for a unit,
    compute it with a warm local session cache, heartbeat while
    computing (a background thread — the lease stays alive through
    arbitrarily long units as long as the process is actually making
    progress), post the result.  The loop survives server restarts
    (re-registering when the server no longer knows the worker id) and
    transient connection failures (bounded client-side backoff; beyond
    it, the worker waits ``reconnect_s`` and tries again) — a worker is
    a cattle process you point at a URL and forget.

    Returns 0 on a clean stop (the ``stop`` event, or the server
    telling the worker to retire during drain).
    """
    from .client import ServeClient, ServerError

    if announce is None:
        announce = get_logger("worker").info
    stop = stop or threading.Event()
    client = ServeClient(url, timeout=120.0, retries=2, backoff_s=0.2)
    sessions: OrderedDict[str, Any] = OrderedDict()
    registration: Optional[Dict[str, Any]] = None

    def _register() -> Optional[Dict[str, Any]]:
        try:
            reg = client._request(
                "POST", "/worker/register", {"label": label}
            )
        except ServerError:
            return None
        announce(
            f"registered as {reg['worker']} with {url} "
            f"(lease {reg['lease_s']:.0f}s)"
        )
        return reg

    while not stop.is_set():
        if registration is None:
            registration = _register()
            if registration is None:
                if stop.wait(reconnect_s):
                    break
                continue
        worker_id = registration["worker"]
        lease_s = float(registration["lease_s"])
        wait_s = poll_s if poll_s is not None else float(
            registration.get("poll_s", 10.0)
        )
        try:
            polled = client._request(
                "POST", "/worker/poll",
                {"worker": worker_id, "wait_s": wait_s},
            )
        except ServerError:
            # Server gone (restart, network) — re-register when back.
            registration = None
            if stop.wait(reconnect_s):
                break
            continue
        if polled.get("retire"):
            announce("server is draining; retiring")
            return 0
        if polled.get("reregister"):
            registration = None
            continue
        unit = polled.get("unit")
        if not unit:
            continue
        status, result = _compute_with_heartbeat(
            client, worker_id, unit, sessions, lease_s
        )
        body = {
            "worker": worker_id,
            "unit": unit["id"],
            "status": status,
            "result": result,
        }
        blob = snapshot_blob()
        if blob is not None:
            body["obs"] = blob
        try:
            client._request("POST", "/worker/result", body)
        except ServerError:
            # The result is lost with the connection; the supervisor's
            # lease will expire and re-dispatch the unit elsewhere.
            registration = None
            if stop.wait(reconnect_s):
                break
    return 0


def _compute_with_heartbeat(
    client, worker_id: str, unit: Dict[str, Any],
    sessions: OrderedDict, lease_s: float,
) -> Tuple[str, Any]:
    """Run one unit while a background thread renews its lease."""
    from .client import ServerError

    hb_stop = threading.Event()

    def _beat() -> None:
        interval = max(0.2, lease_s / 3.0)
        while not hb_stop.wait(interval):
            try:
                client._request("POST", "/worker/heartbeat", {
                    "worker": worker_id, "unit": unit["id"],
                })
            except ServerError:
                # A missed beat is the supervisor's signal, not ours.
                pass

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    try:
        if _obs_state.enabled:
            with _obs_trace.span(
                "worker.compute", parent=unit.get("trace"),
                worker=worker_id, unit=unit["id"],
            ):
                result = run_unit(
                    sessions, unit["kind"], unit["payload"]
                )
        else:
            result = run_unit(sessions, unit["kind"], unit["payload"])
        return "ok", result
    except BaseException as exc:  # noqa: BLE001 - worker must survive
        return "error", f"{type(exc).__name__}: {exc}"
    finally:
        hb_stop.set()
        beater.join(timeout=1.0)
