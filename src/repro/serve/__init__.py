"""``repro.serve`` — the evaluation service (PR 6, distributed in PR 9).

A long-running daemon that turns the repo's evaluation machinery into a
shared, deduplicating appliance: clients submit systems/configurations
(or whole sweeps and conformance campaigns) over HTTP or a unix socket;
the service normalizes every request to its content address, coalesces
duplicates, batches compatible work onto a warm worker fleet, and
persists everything in one sharded :class:`repro.store.ResultStore`.

The fleet is supervised and failure-tolerant: local forked workers
and/or remote HTTP workers (``repro worker --connect URL``), per-unit
leases with heartbeats, bounded retries on a different worker, hedged
re-dispatch of stragglers, a crash-safe pending-unit journal, and
inline degradation when no worker is available — with results
bit-identical to a failure-free run under any kill/slow/partition
schedule.

Layering: :mod:`.protocol` (addressing), :mod:`.workers` (transports),
:mod:`.supervisor` (liveness + delivery), :mod:`.service` (the engine),
:mod:`.server` (HTTP shell), :mod:`.client` (client + report adapters).
"""

from .client import (
    ServeClient,
    ServerError,
    run_campaign_via_server,
    run_sweep_via_server,
)
from .protocol import (
    PROTOCOL_FORMAT,
    WORKER_PROTOCOL,
    evaluation_key,
    seed_key,
    system_fingerprint,
)
from .server import UnixHTTPServer, make_server, serve
from .service import EvaluationService, Job, ServiceOverloaded
from .supervisor import Supervisor, SupervisorConfig, UnitJournal
from .workers import LocalFleet, run_unit, run_worker

__all__ = [
    "EvaluationService",
    "Job",
    "LocalFleet",
    "PROTOCOL_FORMAT",
    "ServeClient",
    "ServerError",
    "ServiceOverloaded",
    "Supervisor",
    "SupervisorConfig",
    "UnitJournal",
    "UnixHTTPServer",
    "WORKER_PROTOCOL",
    "evaluation_key",
    "make_server",
    "run_campaign_via_server",
    "run_sweep_via_server",
    "run_unit",
    "run_worker",
    "seed_key",
    "serve",
    "system_fingerprint",
]
