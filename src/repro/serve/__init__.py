"""``repro.serve`` — the evaluation service (PR 6).

A long-running daemon that turns the repo's evaluation machinery into a
shared, deduplicating appliance: clients submit systems/configurations
(or whole sweeps and conformance campaigns) over HTTP or a unix socket;
the service normalizes every request to its content address, coalesces
duplicates, batches compatible work onto a warm worker pool, and
persists everything in one sharded :class:`repro.store.ResultStore`.

Layering: :mod:`.protocol` (addressing), :mod:`.service` (the engine),
:mod:`.server` (HTTP shell), :mod:`.client` (client + report adapters).
"""

from .client import (
    ServeClient,
    ServerError,
    run_campaign_via_server,
    run_sweep_via_server,
)
from .protocol import (
    PROTOCOL_FORMAT,
    evaluation_key,
    seed_key,
    system_fingerprint,
)
from .server import UnixHTTPServer, make_server, serve
from .service import EvaluationService, Job

__all__ = [
    "EvaluationService",
    "Job",
    "PROTOCOL_FORMAT",
    "ServeClient",
    "ServerError",
    "UnixHTTPServer",
    "evaluation_key",
    "make_server",
    "run_campaign_via_server",
    "run_sweep_via_server",
    "seed_key",
    "serve",
    "system_fingerprint",
]
