"""JSON round-tripping of systems and configurations.

Lets users persist generated workloads, exchange problem instances, and
pin down regression cases.  The format is a plain nested dictionary —
stable keys, no pickling — so instances remain diffable and editable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..buses.can import CanBusSpec
from ..buses.ttp import Slot, TTPBusConfig, TTPBusSpec
from ..model.application import Application, Dependency, Message, Process, ProcessGraph
from ..model.architecture import Architecture
from ..model.topology import Cluster, Gateway, Topology
from ..model.configuration import (
    OffsetTable,
    PriorityAssignment,
    SystemConfiguration,
)
from ..system import System

__all__ = [
    "system_to_dict",
    "system_from_dict",
    "config_to_dict",
    "config_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "save_system",
    "load_system",
]


def system_to_dict(system: System) -> Dict[str, Any]:
    """Serialize a :class:`System` to a JSON-compatible dictionary."""
    app = system.app
    arch = system.arch
    if arch.topology.is_canonical:
        # The canonical two-cluster form keeps the original flat keys so
        # every pre-topology artefact (and its hash) is byte-identical.
        arch_data: Dict[str, Any] = {
            "tt_nodes": arch.tt_node_names(),
            "et_nodes": arch.et_node_names(),
            "gateway": arch.gateway,
            "gateway_transfer_wcet": arch.gateway_transfer_wcet,
            "gateway_transfer_period": arch.gateway_transfer_period,
        }
    else:
        topo = arch.topology
        arch_data = {
            "topology": {
                "clusters": [
                    {
                        "name": c.name,
                        "kind": c.kind,
                        "nodes": list(c.nodes),
                    }
                    for c in (
                        topo.clusters[n] for n in sorted(topo.clusters)
                    )
                ],
                "gateways": [
                    {
                        "node": g.node,
                        "clusters": list(g.clusters),
                        "transfer_wcet": g.transfer_wcet,
                    }
                    for g in (
                        topo.gateways[n] for n in sorted(topo.gateways)
                    )
                ],
            },
            "gateway_transfer_wcet": arch.gateway_transfer_wcet,
            "gateway_transfer_period": arch.gateway_transfer_period,
        }
    return {
        "format": "repro-system-v1",
        "application": {
            "graphs": [
                {
                    "name": g.name,
                    "period": g.period,
                    "deadline": g.deadline,
                    "processes": [
                        {
                            "name": p.name,
                            "wcet": p.wcet,
                            "node": p.node,
                            "deadline": p.deadline,
                        }
                        for p in g.processes.values()
                    ],
                    "messages": [
                        {
                            "name": m.name,
                            "src": m.src,
                            "dst": m.dst,
                            "size": m.size,
                        }
                        for m in g.messages.values()
                    ],
                    "dependencies": [
                        {"src": d.src, "dst": d.dst} for d in g.dependencies
                    ],
                }
                for g in app.graphs.values()
            ]
        },
        "architecture": arch_data,
        "can_spec": {
            "bit_time": system.can_spec.bit_time,
            "fixed_frame_time": system.can_spec.fixed_frame_time,
        },
        "ttp_spec": {
            "byte_time": system.ttp_spec.byte_time,
            "slot_overhead": system.ttp_spec.slot_overhead,
        },
        "releases": dict(system.releases),
    }


def system_from_dict(data: Dict[str, Any]) -> System:
    """Rebuild a :class:`System` from :func:`system_to_dict` output."""
    graphs = []
    for g in data["application"]["graphs"]:
        graphs.append(
            ProcessGraph(
                name=g["name"],
                period=g["period"],
                deadline=g["deadline"],
                processes=[
                    Process(
                        name=p["name"],
                        wcet=p["wcet"],
                        node=p["node"],
                        deadline=p.get("deadline"),
                    )
                    for p in g["processes"]
                ],
                messages=[
                    Message(
                        name=m["name"],
                        src=m["src"],
                        dst=m["dst"],
                        size=m["size"],
                    )
                    for m in g["messages"]
                ],
                dependencies=[
                    Dependency(src=d["src"], dst=d["dst"])
                    for d in g.get("dependencies", ())
                ],
            )
        )
    arch_data = data["architecture"]
    if "topology" in arch_data:
        topo_data = arch_data["topology"]
        topology = Topology(
            clusters=[
                Cluster(
                    name=c["name"],
                    kind=c["kind"],
                    nodes=tuple(c.get("nodes", ())),
                )
                for c in topo_data["clusters"]
            ],
            gateways=[
                Gateway(
                    node=g["node"],
                    clusters=tuple(g["clusters"]),
                    transfer_wcet=g.get("transfer_wcet"),
                )
                for g in topo_data["gateways"]
            ],
        )
        arch = Architecture.from_topology(
            topology,
            gateway_transfer_wcet=arch_data.get("gateway_transfer_wcet", 0.0),
            gateway_transfer_period=arch_data.get("gateway_transfer_period"),
        )
    else:
        arch = Architecture(
            tt_nodes=arch_data["tt_nodes"],
            et_nodes=arch_data["et_nodes"],
            gateway=arch_data["gateway"],
            gateway_transfer_wcet=arch_data.get("gateway_transfer_wcet", 0.0),
            gateway_transfer_period=arch_data.get("gateway_transfer_period"),
        )
    can = data.get("can_spec", {})
    ttp = data.get("ttp_spec", {})
    return System(
        app=Application(graphs),
        arch=arch,
        can_spec=CanBusSpec(
            bit_time=can.get("bit_time", 0.002),
            fixed_frame_time=can.get("fixed_frame_time"),
        ),
        ttp_spec=TTPBusSpec(
            byte_time=ttp.get("byte_time", 1.0),
            slot_overhead=ttp.get("slot_overhead", 0.0),
        ),
        releases=data.get("releases", {}),
    )


def config_to_dict(config: SystemConfiguration) -> Dict[str, Any]:
    """Serialize a configuration ``ψ`` to a JSON-compatible dictionary."""
    out: Dict[str, Any] = {
        "format": "repro-config-v1",
        "bus": [
            {"node": s.node, "capacity": s.capacity, "duration": s.duration}
            for s in config.bus.slots
        ],
        "process_priorities": dict(config.priorities.process_priorities),
        "message_priorities": dict(config.priorities.message_priorities),
        "tt_delays": dict(config.tt_delays),
    }
    if config.offsets is not None:
        out["offsets"] = {
            "processes": dict(config.offsets.process_offsets),
            "messages": dict(config.offsets.message_offsets),
        }
    # Route overrides are a first-class configuration dimension; the
    # key is emitted only when non-empty so default-routed artefacts
    # keep their pre-topology byte form.
    if getattr(config, "routes", None):
        out["routes"] = {
            name: list(route) for name, route in sorted(config.routes.items())
        }
    return out


def config_from_dict(data: Dict[str, Any]) -> SystemConfiguration:
    """Rebuild a configuration from :func:`config_to_dict` output."""
    bus = TTPBusConfig(
        [
            Slot(node=s["node"], capacity=s["capacity"], duration=s["duration"])
            for s in data["bus"]
        ]
    )
    priorities = PriorityAssignment(
        process_priorities=data.get("process_priorities", {}),
        message_priorities=data.get("message_priorities", {}),
    )
    offsets = None
    if "offsets" in data:
        offsets = OffsetTable(
            process_offsets=data["offsets"].get("processes", {}),
            message_offsets=data["offsets"].get("messages", {}),
        )
    return SystemConfiguration(
        bus=bus,
        priorities=priorities,
        offsets=offsets,
        tt_delays=data.get("tt_delays", {}),
        routes={
            name: tuple(route)
            for name, route in data.get("routes", {}).items()
        },
    )


def run_result_to_dict(run) -> Dict[str, Any]:
    """Serialize a :class:`repro.api.result.RunResult` (JSON-compatible).

    The rich ``analysis`` payload is dropped; see the ``repro.api.result``
    module docstring.
    """
    return run.to_dict()


def run_result_from_dict(data: Dict[str, Any]):
    """Rebuild a :class:`repro.api.result.RunResult` from its dict form."""
    from ..api.result import RunResult

    return RunResult.from_dict(data)


def save_system(system: System, path: Union[str, Path]) -> None:
    """Write a system to a JSON file."""
    Path(path).write_text(json.dumps(system_to_dict(system), indent=2))


def load_system(path: Union[str, Path]) -> System:
    """Read a system from a JSON file."""
    return system_from_dict(json.loads(Path(path).read_text()))
