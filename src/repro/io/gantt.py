"""ASCII Gantt rendering of static schedules and TDMA rounds.

Turns a :class:`repro.schedule.StaticSchedule` into the kind of timeline
the paper draws in Fig. 4: one row per TT node's schedule table, one row
per bus showing the TDMA slot grid and the frames that carry messages.
Purely presentational — handy in examples, docs and debugging sessions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..buses.ttp import TTPBusConfig
from ..schedule.schedule_table import StaticSchedule
from ..system import System

__all__ = ["render_schedule"]


def _scale(t: float, width: int, horizon: float) -> int:
    return min(width - 1, max(0, int(round(t / horizon * (width - 1)))))


def _paint(row: List[str], start: float, end: float, label: str,
           width: int, horizon: float) -> None:
    a = _scale(start, width, horizon)
    b = max(a + 1, _scale(end, width, horizon))
    for i in range(a, b):
        row[i] = "#"
    for i, ch in enumerate(label[: b - a]):
        row[a + i] = ch


def render_schedule(
    system: System,
    schedule: StaticSchedule,
    bus: TTPBusConfig,
    width: int = 72,
    horizon: Optional[float] = None,
) -> str:
    """Render schedule tables and the TDMA grid as ASCII rows.

    ``horizon`` defaults to the schedule makespan rounded up to a whole
    TDMA round.
    """
    if horizon is None:
        makespan = max(schedule.makespan, bus.round_length)
        rounds = math.ceil(makespan / bus.round_length)
        horizon = rounds * bus.round_length
    lines: List[str] = []
    header = f"0{' ' * (width - len(str(horizon)) - 1)}{horizon:g}"
    lines.append(f"{'time':>10} |{header}|")

    for node in sorted(schedule.tables):
        row = ["."] * width
        for entry in schedule.tables[node]:
            _paint(row, entry.start, entry.end, entry.process, width, horizon)
        lines.append(f"{node:>10} |{''.join(row)}|")

    # TDMA grid: slot boundaries plus the frames that carry messages.
    grid = ["."] * width
    rounds = int(math.ceil(horizon / bus.round_length))
    for round_index in range(rounds):
        for slot in bus.slots:
            start = bus.slot_start(slot.node, round_index)
            if start >= horizon:
                continue
            grid[_scale(start, width, horizon)] = "|"
    lines.append(f"{'TTP grid':>10} |{''.join(grid)}|")
    frames = ["."] * width
    for (node, _round), frame in sorted(schedule.medl.items()):
        if not frame.messages or frame.start >= horizon:
            continue
        label = ",".join(frame.messages)
        _paint(frames, frame.start, frame.end, label, width, horizon)
    lines.append(f"{'frames':>10} |{''.join(frames)}|")
    return "\n".join(lines)
