"""Human-readable reports in the spirit of the paper's tables.

Formats analysis results the way section 4.2 and section 6 present them:
per-activity timing tables (offset, jitter, queueing, WCET, response),
per-graph schedulability verdicts, and heuristic comparison rows.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.buffers import BufferReport
from ..analysis.degree import SchedulabilityReport
from ..analysis.timing import ResponseTimes
from ..system import System

__all__ = [
    "format_table",
    "timing_report",
    "timing_rows_report",
    "schedulability_report",
    "comparison_table",
    "sweep_report",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as a fixed-width text table."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "inf"
    return f"{value:.2f}"


def timing_report(system: System, rho: ResponseTimes, limit: Optional[int] = None) -> str:
    """Per-activity timing table (like the values of Fig. 4a)."""
    rows: List[Tuple[object, ...]] = []
    for name in sorted(rho.processes):
        t = rho.processes[name]
        rows.append(
            ("process", name, _fmt(t.offset), _fmt(t.jitter), _fmt(t.queuing),
             _fmt(t.duration), _fmt(t.response))
        )
    for name in sorted(rho.can):
        t = rho.can[name]
        rows.append(
            ("can msg", name, _fmt(t.offset), _fmt(t.jitter), _fmt(t.queuing),
             _fmt(t.duration), _fmt(t.response))
        )
    for name in sorted(rho.ttp):
        t = rho.ttp[name]
        rows.append(
            ("ttp leg", name, _fmt(t.offset), _fmt(t.jitter), _fmt(t.queuing),
             _fmt(t.duration), _fmt(t.response))
        )
    if limit is not None:
        rows = rows[:limit]
    return format_table(
        ["kind", "name", "O", "J", "w", "C", "r"], rows
    )


def timing_rows_report(timing: dict) -> str:
    """Per-activity timing table from flattened ``RunResult.timing`` rows.

    The serialized twin of :func:`timing_report`: store-served or
    JSON-round-tripped results carry no rich ``ResponseTimes`` payload,
    but their ``timing`` rows hold the same numbers — rendered here in
    the identical column layout (``None`` values, the serialization of
    diverged/infinite entries, print as ``inf``).
    """
    kind_labels = {"process": "process", "can": "can msg", "ttp": "ttp leg"}

    def _cell(value) -> str:
        return _fmt(float("inf") if value is None else value)

    rows: List[Tuple[object, ...]] = []
    for kind, label in kind_labels.items():
        names = sorted(
            row["name"] for row in timing.values() if row["kind"] == kind
        )
        for name in names:
            row = timing[f"{kind}:{name}"]
            rows.append(
                (label, name, _cell(row["offset"]), _cell(row["jitter"]),
                 _cell(row["queuing"]), _cell(row["duration"]),
                 _cell(row["response"]))
            )
    return format_table(["kind", "name", "O", "J", "w", "C", "r"], rows)


def schedulability_report(
    system: System,
    report: SchedulabilityReport,
    buffers: Optional[BufferReport] = None,
) -> str:
    """Per-graph verdicts plus the buffer summary (section 6 style)."""
    rows = []
    for name in sorted(report.graph_responses):
        graph = system.app.graphs[name]
        response = report.graph_responses[name]
        verdict = "met" if response <= graph.deadline else "MISSED"
        rows.append((name, _fmt(response), _fmt(graph.deadline), verdict))
    text = format_table(["graph", "R_G", "D_G", "deadline"], rows)
    text += (
        f"\n\ndegree of schedulability: {report.degree:.2f} "
        f"({'schedulable' if report.schedulable else 'NOT schedulable'})"
    )
    if buffers is not None:
        text += (
            f"\ntotal buffer need s_total = {buffers.total:.0f} bytes "
            f"(Out_CAN={buffers.out_can:.0f}, Out_TTP={buffers.out_ttp:.0f}, "
            + ", ".join(
                f"Out_{n}={v:.0f}" for n, v in sorted(buffers.out_node.items())
            )
            + ")"
        )
    return text


def comparison_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """A titled comparison table (used by the Fig. 9 benchmark harness)."""
    body = format_table(headers, rows)
    bar = "=" * len(title)
    return f"{title}\n{bar}\n{body}"


def _sweep_params(record: dict) -> str:
    """Compact ``k=v`` identity of one sweep cell's parameters."""
    pairs = sorted(record.get("workload", {}).items())
    pairs += sorted(record.get("options", {}).items())
    return ", ".join(f"{k}={v}" for k, v in pairs)


def sweep_report(report) -> str:
    """Render a :class:`repro.explore.ExploreReport` as text tables.

    One comparison table over all cells (the section-6 heuristics view)
    followed by one table per Pareto front group.  Accepts either the
    report object or its :meth:`to_dict` payload, so serialized reports
    (CI artifacts, stored JSON) render identically.
    """
    data = report.to_dict() if hasattr(report, "to_dict") else report
    rows = []
    for record in data["cells"]:
        metrics = record.get("metrics", {})
        if record.get("error"):
            rows.append([
                record["index"], record["method"], _sweep_params(record),
                "-", "ERROR", "-", "-",
            ])
            continue
        degree = metrics.get("degree")
        buffers = metrics.get("total_buffers")
        rows.append([
            record["index"],
            record["method"],
            _sweep_params(record),
            _fmt(degree) if degree is not None else "-",
            "yes" if metrics.get("schedulable") else "NO",
            f"{buffers:.0f}" if buffers is not None else "-",
            metrics.get("evaluations", "-"),
        ])
    name = data.get("name", "sweep")
    out = [comparison_table(
        f"Sweep {name!r}: {len(data['cells'])} cells "
        "(degree: smaller is better; <= 0 schedulable)",
        ["cell", "method", "parameters", "degree", "schedulable",
         "s_total [B]", "evals"],
        rows,
    )]
    for front in data.get("fronts", []):
        group = front.get("group") or {}
        label = ", ".join(f"{k}={v}" for k, v in group.items())
        title = "Pareto front" + (f" [{label}]" if label else "")
        axes = front["axes"]
        out.append(comparison_table(
            title,
            ["cell", "method", *axes],
            [
                [entry["index"], entry["method"],
                 *(_fmt(v) for v in entry["point"])]
                for entry in front["cells"]
            ],
        ))
    errors = [r for r in data["cells"] if r.get("error")]
    for record in errors:
        out.append(
            f"cell {record['index']} ({record['method']}): "
            f"error: {record['error']}"
        )
    return "\n\n".join(out)
