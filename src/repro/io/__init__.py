"""Serialization and paper-style reporting."""

from .gantt import render_schedule
from .report import (
    comparison_table,
    format_table,
    schedulability_report,
    sweep_report,
    timing_report,
    timing_rows_report,
)
from .serialize import (
    config_from_dict,
    config_to_dict,
    load_system,
    run_result_from_dict,
    run_result_to_dict,
    save_system,
    system_from_dict,
    system_to_dict,
)

__all__ = [
    "comparison_table",
    "render_schedule",
    "config_from_dict",
    "config_to_dict",
    "format_table",
    "load_system",
    "run_result_from_dict",
    "run_result_to_dict",
    "save_system",
    "schedulability_report",
    "sweep_report",
    "system_from_dict",
    "system_to_dict",
    "timing_report",
    "timing_rows_report",
]
