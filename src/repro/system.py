"""The :class:`System` context: application + architecture + bus physics.

Bundles everything that is *given* to the synthesis problem (section 3):
the application ``Γ``, the two-cluster architecture, and the physical bus
parameters.  The synthesis variables ``ψ = <φ, β, π>`` are **not** part of
the system — they are passed around separately so optimizers can mutate
them freely.

The class pre-computes and caches the derived facts every analysis needs:
message routes, the set of CAN-borne messages, per-node ET process lists,
and worst-case CAN frame times ``C_m``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .buses.can import CanBusSpec
from .buses.ttp import TTPBusSpec
from .exceptions import ModelError
from .model.application import Application, Message
from .model.architecture import Architecture, MessageRoute
from .model.validation import validate_system

__all__ = ["System"]


class System:
    """An analysis/synthesis problem instance.

    Parameters
    ----------
    app:
        The application ``Γ``.  If graphs have different periods, combine
        them first (:func:`repro.model.hypergraph.combine`) — the static
        cyclic schedule of the TTC is built over one common period.
    arch:
        The two-cluster architecture.
    can_spec:
        Physical CAN bus parameters (frame time model).
    ttp_spec:
        Physical TTP parameters used when deriving slot durations from
        capacities (optimizers use it when resizing slots).
    releases:
        Optional earliest-release table for process instances (produced by
        the hyper-graph transform); missing entries mean release at 0.
    """

    def __init__(
        self,
        app: Application,
        arch: Architecture,
        can_spec: Optional[CanBusSpec] = None,
        ttp_spec: Optional[TTPBusSpec] = None,
        releases: Optional[Mapping[str, float]] = None,
    ) -> None:
        validate_system(app, arch)
        self.app = app
        self.arch = arch
        self.can_spec = can_spec if can_spec is not None else CanBusSpec()
        self.ttp_spec = ttp_spec if ttp_spec is not None else TTPBusSpec()
        self.releases: Dict[str, float] = dict(releases or {})

        # -- caches --------------------------------------------------------
        self._route: Dict[str, MessageRoute] = {}
        for msg in app.all_messages():
            self._route[msg.name] = arch.route_of(app, msg)
        self._can_frame_time: Dict[str, float] = {}
        for msg in app.all_messages():
            if self._route[msg.name] in (
                MessageRoute.ET_TO_ET,
                MessageRoute.TT_TO_ET,
                MessageRoute.ET_TO_TT,
            ):
                self._can_frame_time[msg.name] = self.can_spec.frame_time(msg.size)
        self._et_procs_by_node: Dict[str, List[str]] = {}
        for proc in app.all_processes():
            if arch.is_et_node(proc.node):
                self._et_procs_by_node.setdefault(proc.node, []).append(proc.name)
        for names in self._et_procs_by_node.values():
            names.sort()
        # Sorted activity lists, cached at construction: the analysis
        # kernel and the queue analyses iterate them inside hot loops,
        # so they must not be re-derived (and re-sorted) per call.
        self._sorted_can = sorted(self._can_frame_time)
        self._sorted_ettt = sorted(
            name
            for name, route in self._route.items()
            if route is MessageRoute.ET_TO_TT
        )
        self._sorted_ttet = sorted(
            name
            for name, route in self._route.items()
            if route is MessageRoute.TT_TO_ET
        )
        self._sorted_et_procs = sorted(
            p.name for p in app.all_processes() if arch.is_et_node(p.node)
        )
        self._sorted_tt_procs = sorted(
            p.name for p in app.all_processes() if arch.is_tt_node(p.node)
        )
        self._outgoing_by_node: Dict[str, List[str]] = {}
        for name, route in sorted(self._route.items()):
            if route not in (MessageRoute.ET_TO_ET, MessageRoute.ET_TO_TT):
                continue
            node = app.process(app.message(name).src).node
            self._outgoing_by_node.setdefault(node, []).append(name)
        # Transitive ancestors, for precedence-aware interference: the
        # same-instance execution of an ancestor always precedes its
        # descendant's activation, so it can never overlap it.
        self._proc_ancestors: Dict[str, frozenset] = {}
        self._msg_ancestors: Dict[str, frozenset] = {}
        for graph in app.graphs.values():
            proc_anc: Dict[str, set] = {}
            msg_anc: Dict[str, set] = {}
            for proc_name in graph.topological_order():
                procs: set = set()
                msgs: set = set()
                for pred, msg_name in graph.predecessors(proc_name):
                    procs.add(pred)
                    procs |= proc_anc[pred]
                    msgs |= msg_anc[pred]
                    if msg_name is not None:
                        msgs.add(msg_name)
                proc_anc[proc_name] = procs
                msg_anc[proc_name] = msgs
            for proc_name in graph.processes:
                self._proc_ancestors[proc_name] = frozenset(proc_anc[proc_name])
            for msg_name, msg in graph.messages.items():
                # Ancestors of a message: everything upstream of its sender
                # (including the messages that deliver into the sender).
                self._msg_ancestors[msg_name] = frozenset(msg_anc[msg.src])
        # Endpoint clusters per message (the routing layer's vocabulary;
        # gateways host no application processes, so both endpoints have
        # a unique home cluster).
        self._msg_clusters: Dict[str, Tuple[str, str]] = {}
        topo = arch.topology
        for msg in app.all_messages():
            src = topo.cluster_of_node(app.process(msg.src).node)
            dst = topo.cluster_of_node(app.process(msg.dst).node)
            self._msg_clusters[msg.name] = (src, dst)
        self._default_routing = None

    # -- topology -----------------------------------------------------------

    @property
    def topology(self):
        """The architecture's cluster/gateway graph."""
        return self.arch.topology

    @property
    def multi_topology(self) -> bool:
        """True off the canonical one-TTC/one-ETC/one-gateway shape.

        Canonical systems take the exact pre-generalization code paths
        (bit-for-bit); only multi-cluster/multi-gateway systems pay for
        the per-leg machinery.
        """
        return not self.arch.topology.is_canonical

    def clusters_of_message(self, msg_name: str) -> Tuple[str, str]:
        """(source cluster, destination cluster) of a message."""
        try:
            return self._msg_clusters[msg_name]
        except KeyError:
            raise ModelError(f"unknown message {msg_name}") from None

    def is_intercluster(self, msg_name: str) -> bool:
        """True when the message's endpoints live on different clusters."""
        src, dst = self.clusters_of_message(msg_name)
        return src != dst

    def default_route(self, msg_name: str) -> Tuple[str, ...]:
        """Topology-default (shortest) gateway route of a message."""
        src, dst = self.clusters_of_message(msg_name)
        if src == dst:
            return ()
        return self.arch.topology.default_route(src, dst)

    def default_routing(self):
        """The cached all-defaults :class:`~repro.semantics.routing.RoutingPlan`."""
        if self._default_routing is None:
            from .semantics.routing import RoutingPlan

            self._default_routing = RoutingPlan(self)
        return self._default_routing

    def routing_for(self, overrides=None):
        """A routing plan for a configuration's ``routes`` overrides.

        Falls back to the cached default plan when there are no
        overrides, which is every canonical evaluation.
        """
        if not overrides:
            return self.default_routing()
        from .semantics.routing import RoutingPlan

        return RoutingPlan(self, overrides)

    # -- routing ------------------------------------------------------------

    def route(self, msg_name: str) -> MessageRoute:
        """Cached route classification of a message."""
        try:
            return self._route[msg_name]
        except KeyError:
            raise ModelError(f"unknown message {msg_name}") from None

    def can_messages(self) -> List[str]:
        """Names of all messages that travel on the CAN bus, sorted.

        This is the arbitration domain of the CAN analysis: ET->ET and
        ET->TT messages (sent by ETC nodes) plus TT->ET messages (relayed
        by the gateway from the Out_CAN queue) all compete on the same bus.
        """
        return list(self._sorted_can)

    def et_to_tt_messages(self) -> List[str]:
        """Messages that traverse the gateway's Out_TTP FIFO, sorted."""
        return list(self._sorted_ettt)

    def tt_to_et_messages(self) -> List[str]:
        """Messages that traverse the gateway's Out_CAN queue, sorted."""
        return list(self._sorted_ttet)

    def et_to_et_messages_from(self, node: str) -> List[str]:
        """ET->ET and ET->TT messages enqueued in ``Out_node``, sorted.

        Both kinds leave the node through its CAN controller queue.
        """
        return list(self._outgoing_by_node.get(node, []))

    def can_frame_time(self, msg_name: str) -> float:
        """Worst-case CAN transmission time ``C_m`` of a message."""
        try:
            return self._can_frame_time[msg_name]
        except KeyError:
            raise ModelError(
                f"message {msg_name} does not travel on the CAN bus"
            ) from None

    # -- processes ----------------------------------------------------------

    def et_processes_on(self, node: str) -> List[str]:
        """Priority-scheduled application processes on an ET node."""
        return list(self._et_procs_by_node.get(node, []))

    def et_nodes_with_processes(self) -> List[str]:
        """ET nodes that host at least one application process."""
        return sorted(self._et_procs_by_node)

    def tt_processes(self) -> List[str]:
        """Statically scheduled processes (on TTC nodes), sorted."""
        return list(self._sorted_tt_procs)

    def et_processes(self) -> List[str]:
        """Priority-scheduled processes (on ETC nodes), sorted."""
        return list(self._sorted_et_procs)

    def release_of(self, proc_name: str) -> float:
        """Earliest release of a process instance (0 unless hyper-graph)."""
        return self.releases.get(proc_name, 0.0)

    def process_is_ancestor(self, ancestor: str, of: str) -> bool:
        """True when ``ancestor`` transitively precedes ``of`` (same graph)."""
        return ancestor in self._proc_ancestors.get(of, frozenset())

    def message_is_ancestor(self, ancestor: str, of: str) -> bool:
        """True when message ``ancestor`` is upstream of message ``of``.

        Upstream means the ancestor delivers into the (transitive) past of
        ``of``'s sender, so its same-instance transmission always precedes
        ``of``'s queueing.
        """
        return ancestor in self._msg_ancestors.get(of, frozenset())

    def __repr__(self) -> str:
        return f"System({self.app!r}, {self.arch!r})"
