"""Time-Triggered Protocol (TTP) bus substrate.

Implements the TDMA bus access scheme of section 2.2: each node with a TTP
controller — every TTC node plus the gateway — owns exactly one slot ``Si``
in a TDMA *round*; the sequence of rounds repeats as a *cycle*.  A slot can
carry a *frame* of several messages, limited by the slot's byte capacity.

The slot sequence and sizes constitute the ``β`` part of a system
configuration; this module provides :class:`Slot` and :class:`TTPBusConfig`
(the configuration object itself) plus the timing helpers used by the
analyses: slot start offsets, round length ``T_TDMA``, and the time at
which a frame sent in a given slot of a given round is fully received.

Frame assignment to concrete rounds (the MEDL content) is produced by the
static scheduler (:mod:`repro.schedule.schedule_table`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = ["TTPBusSpec", "Slot", "TTPBusConfig"]


@dataclass(frozen=True)
class TTPBusSpec:
    """Physical parameters of a TTP bus.

    Converts slot byte capacities into slot durations:
    ``duration = overhead + capacity_bytes * byte_time``.

    Parameters
    ----------
    byte_time:
        Time to transmit one payload byte.
    slot_overhead:
        Per-slot protocol overhead (frame header/CRC, inter-frame gap).
    """

    byte_time: float = 1.0
    slot_overhead: float = 0.0

    def slot_duration(self, capacity_bytes: int) -> float:
        """Duration of a slot carrying up to ``capacity_bytes`` of payload."""
        if capacity_bytes <= 0:
            raise ConfigurationError("slot capacity must be positive")
        return self.slot_overhead + capacity_bytes * self.byte_time


@dataclass(frozen=True)
class Slot:
    """One TDMA slot: owning node, byte capacity and duration.

    ``capacity`` is the ``size_Si`` of the paper (used by the gateway queue
    analysis to decide how many queued bytes drain per round); ``duration``
    is the slot's length on the wire.  They are kept independent so that
    the worked examples of the paper (where durations are given directly in
    milliseconds) can be reproduced exactly.
    """

    node: str
    capacity: int
    duration: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(
                f"slot of {self.node}: capacity must be positive"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"slot of {self.node}: duration must be positive"
            )


class TTPBusConfig:
    """The TDMA bus configuration ``β``: an ordered sequence of slots.

    Exactly one slot per node with a TTP controller (TTC nodes + gateway).
    Rounds repeat back-to-back forever starting at time 0.

    Parameters
    ----------
    slots:
        Slot sequence, in transmission order within a round.
    """

    def __init__(self, slots: Sequence[Slot]) -> None:
        if not slots:
            raise ConfigurationError("a TDMA round needs at least one slot")
        owners = [s.node for s in slots]
        if len(set(owners)) != len(owners):
            raise ConfigurationError(
                "a node can own only one slot per TDMA round "
                f"(duplicates in {owners})"
            )
        self.slots: Tuple[Slot, ...] = tuple(slots)
        self._offsets: List[float] = []
        t = 0.0
        for slot in self.slots:
            self._offsets.append(t)
            t += slot.duration
        self._round_length = t
        self._index_of: Dict[str, int] = {
            s.node: i for i, s in enumerate(self.slots)
        }

    # -- basic timing -------------------------------------------------------

    @property
    def round_length(self) -> float:
        """``T_TDMA``, the length of one TDMA round."""
        return self._round_length

    def slot_index(self, node: str) -> int:
        """Position of ``node``'s slot within the round (0-based)."""
        try:
            return self._index_of[node]
        except KeyError:
            raise ConfigurationError(
                f"node {node} owns no TDMA slot in this round"
            ) from None

    def slot_of(self, node: str) -> Slot:
        """The slot owned by ``node``."""
        return self.slots[self.slot_index(node)]

    def slot_offset(self, node: str) -> float:
        """Offset ``O_Si`` of ``node``'s slot from the start of a round."""
        return self._offsets[self.slot_index(node)]

    # -- occurrence arithmetic ----------------------------------------------

    def slot_start(self, node: str, round_index: int) -> float:
        """Absolute start time of ``node``'s slot in round ``round_index``."""
        if round_index < 0:
            raise ConfigurationError("round index must be non-negative")
        return round_index * self._round_length + self.slot_offset(node)

    def slot_end(self, node: str, round_index: int) -> float:
        """Absolute end time of ``node``'s slot in round ``round_index``.

        A frame broadcast in this slot is fully received by every node at
        this instant; receiver offsets are constrained by it.
        """
        return self.slot_start(node, round_index) + self.slot_of(node).duration

    def next_slot_start(self, node: str, ready_time: float) -> Tuple[int, float]:
        """First slot of ``node`` starting at or after ``ready_time``.

        Returns ``(round_index, start_time)``.  A frame handed to the TTP
        controller strictly before a slot's start can ride that slot; the
        boundary case (ready exactly at the start) is also allowed, which
        matches the paper's worked example where the kernel prepares the
        frame in the MBI ahead of the slot.
        """
        if ready_time < 0:
            ready_time = 0.0
        offset = self.slot_offset(node)
        rounds_before = (ready_time - offset) / self._round_length
        round_index = int(rounds_before)
        if round_index < rounds_before:
            round_index += 1
        if round_index < 0:
            round_index = 0
        # Guard against floating point: ensure the start is >= ready_time.
        while self.slot_start(node, round_index) < ready_time - 1e-9:
            round_index += 1
        return round_index, self.slot_start(node, round_index)

    def waiting_time(self, node: str, ready_time: float) -> float:
        """Time from ``ready_time`` until the start of ``node``'s next slot.

        This is the blocking term ``B_m`` of the gateway queue analysis
        (section 4.1.2) when ``node`` is the gateway.
        """
        _round, start = self.next_slot_start(node, ready_time)
        return start - ready_time

    def nodes(self) -> List[str]:
        """Slot owners in slot order."""
        return [s.node for s in self.slots]

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{s.node}:{s.capacity}B/{s.duration}" for s in self.slots
        )
        return f"TTPBusConfig([{inner}], T_TDMA={self._round_length})"
