"""Controller Area Network (CAN) bus substrate.

Implements the CAN bus of section 2.2: a priority bus with collision
avoidance where the pending message with the highest priority (lowest
identifier) wins arbitration.  Transmission is non-preemptive: once a frame
has started, higher-priority frames wait until it completes — this is the
source of the blocking term ``B_m`` in the queueing analysis.

This module provides the worst-case frame transmission time ``C_m`` for a
message of a given payload size, following the classic Tindell/Burns/
Wellings model for CAN 2.0A (11-bit identifiers) with worst-case bit
stuffing:

    C_m = (g + 8*s_m + 13 + floor((g + 8*s_m - 1) / 4)) * t_bit

where ``g = 34`` is the number of control bits exposed to stuffing, ``8*s_m``
the payload bits, 13 the un-stuffable tail (CRC delimiter, ACK, EOF,
intermission), and the floor term the worst-case number of stuff bits.

For reproducing the paper's worked examples, where ``C_m`` is simply given
(e.g. 10 ms), :class:`CanBusSpec` also accepts a ``fixed_frame_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = ["CanBusSpec", "CAN_MAX_PAYLOAD"]

#: Maximum payload of a classic CAN frame, in bytes.
CAN_MAX_PAYLOAD = 8

# Bits of a CAN 2.0A frame subject to stuffing, excluding the data field:
# SOF(1) + ID(11) + RTR(1) + IDE(1) + r0(1) + DLC(4) + CRC(15) = 34.
_STUFFABLE_OVERHEAD_BITS = 34
# Bits never stuffed: CRC delimiter(1) + ACK(2) + EOF(7) + IFS(3) = 13.
_UNSTUFFED_TAIL_BITS = 13


@dataclass(frozen=True)
class CanBusSpec:
    """Physical parameters of a CAN bus.

    Parameters
    ----------
    bit_time:
        Duration of one bit on the wire (1 / bit rate).
    fixed_frame_time:
        If set, every frame (regardless of size) takes exactly this long —
        used to reproduce the paper's examples where ``C_m`` is a given
        constant.  When ``None`` the bit-accurate formula is used.
    """

    bit_time: float = 0.002  # 500 kbit/s expressed in milliseconds
    fixed_frame_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bit_time <= 0:
            raise ConfigurationError("CAN bit time must be positive")
        if self.fixed_frame_time is not None and self.fixed_frame_time <= 0:
            raise ConfigurationError("fixed frame time must be positive")

    def frame_bits(self, payload_bytes: int) -> int:
        """Worst-case number of bits of a frame carrying ``payload_bytes``.

        Payloads larger than 8 bytes do not fit in one classic CAN frame;
        following common practice (and so the paper's 8..32 byte messages
        remain expressible) they are segmented into ``ceil(s/8)`` frames
        and the bit counts summed.
        """
        if payload_bytes <= 0:
            raise ConfigurationError("payload size must be positive")
        total = 0
        remaining = payload_bytes
        while remaining > 0:
            chunk = min(remaining, CAN_MAX_PAYLOAD)
            exposed = _STUFFABLE_OVERHEAD_BITS + 8 * chunk
            stuff = (exposed - 1) // 4
            total += exposed + stuff + _UNSTUFFED_TAIL_BITS
            remaining -= chunk
        return total

    def frame_time(self, payload_bytes: int) -> float:
        """Worst-case transmission time ``C_m`` of a message.

        Respects ``fixed_frame_time`` when configured.
        """
        if self.fixed_frame_time is not None:
            return self.fixed_frame_time
        return self.frame_bits(payload_bytes) * self.bit_time
