"""Bus protocol substrates: TTP/TDMA (static) and CAN (priority-driven)."""

from .can import CAN_MAX_PAYLOAD, CanBusSpec
from .ttp import Slot, TTPBusConfig, TTPBusSpec

__all__ = ["CAN_MAX_PAYLOAD", "CanBusSpec", "Slot", "TTPBusConfig", "TTPBusSpec"]
